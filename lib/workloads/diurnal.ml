(* The diurnal load cycle (the ADAPTIVE experiment).

   The paper hand-picked a lock shape per subsystem because no single
   shape wins across load regimes; this workload makes the regime change
   *within one run*. Load ramps cold -> hot -> cold in three equal
   plateaus: a couple of same-cluster processors with long think times
   (the overnight trickle, where a test&set lock is unbeatable), then
   every processor across every cluster hammering with short think times
   (the daytime peak, where hand-offs are mostly remote and a NUMA
   composite wins), then the trickle again.

   Completed operations are classified into phases by completion time, so
   per-phase throughput compares a morphing lock against each static
   shape on the regime that shape is best at — the acceptance pin is that
   no static algorithm wins both phases while Adaptive tracks the
   per-phase winner within a fixed margin, and that the run shows at
   least one promotion and one demotion.

   A Verify checker and an Obs observer are always installed: the zero-
   violation gate covers the morph protocol's drain hand-offs, and the
   morph counters come from the observer, not from trusting the lock. *)

open Eventsim
open Hector
open Hkernel
open Locks

type config = {
  p_hot : int; (* processors at the daytime peak *)
  p_cold : int; (* processors in the overnight trickle *)
  n_clusters : int;
  phase_us : float; (* length of each of the three plateaus *)
  hold_us : float; (* critical-section work *)
  think_cold_us : float; (* think time between trickle operations *)
  think_hot_us : float; (* think time between peak operations *)
  algo : Lock.algo;
  seed : int;
}

let default_config =
  {
    p_hot = 16;
    p_cold = 1;
    n_clusters = 4;
    phase_us = 1200.0;
    hold_us = 1.5;
    think_cold_us = 5.0;
    think_hot_us = 3.0;
    algo = Lock.adaptive;
    seed = 42;
  }

type result = {
  algo : Lock.algo;
  algo_name : string;
  p_hot : int;
  p_cold : int;
  n_clusters : int;
  phase_us : float;
  cold1_ops : int; (* completed in the first cold plateau *)
  hot_ops : int;
  cold2_ops : int;
  cold_throughput_ops_ms : float; (* both cold plateaus combined *)
  hot_throughput_ops_ms : float;
  morphs_up : int; (* observer-counted promotions (0 for static shapes) *)
  morphs_down : int;
  final_shape : int; (* observer gauge: shape index after the run *)
  final_free : bool;
  lockdep_violations : int;
  obs_rows : Obs.row list;
}

let obs_class = "diurnal"

let run ?(cfg = Config.hector) ?(config = default_config) () =
  if config.p_cold <= 0 || config.p_cold > config.p_hot then
    invalid_arg "Diurnal.run: p_cold out of range";
  if config.n_clusters <= 0 || config.n_clusters > config.p_hot then
    invalid_arg "Diurnal.run: n_clusters out of range";
  if config.p_hot > Config.n_procs cfg then
    invalid_arg "Diurnal.run: p_hot exceeds the machine";
  if config.phase_us <= 0.0 then invalid_arg "Diurnal.run: phase_us <= 0";
  let cfg =
    if Lock.needs_cas config.algo && not cfg.Config.has_cas then
      Config.with_cas cfg
    else cfg
  in
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let clustering =
    Clustering.create ~n_procs:config.p_hot
      ~cluster_size:
        ((config.p_hot + config.n_clusters - 1) / config.n_clusters)
  in
  (* Total over every machine processor (idle ones fold onto the active
     prefix), as the other clustered workloads do. *)
  let topo =
    let cl = Clustering.cluster_of_proc clustering in
    Lock_core.topo ~n_clusters:(Clustering.n_clusters clustering)
      ~cluster_of:(fun p -> cl (p mod config.p_hot))
  in
  let verify = Verify.create ~n_procs:(Config.n_procs cfg) () in
  Machine.set_verify machine (Some verify);
  let obs =
    Obs.create
      ~cluster_of:(Clustering.cluster_of_proc clustering)
      ~n_clusters:(Clustering.n_clusters clustering)
      ~n_procs:(Config.n_procs cfg) ()
  in
  Machine.set_obs machine (Some obs);
  let lock = Lock.make machine ~vclass:obs_class ~topo config.algo in
  let phase = Config.cycles_of_us cfg config.phase_us in
  let hold = Config.cycles_of_us cfg config.hold_us in
  let think_cold = Config.cycles_of_us cfg config.think_cold_us in
  let think_hot = Config.cycles_of_us cfg config.think_hot_us in
  let cold1_ops = ref 0 and hot_ops = ref 0 and cold2_ops = ref 0 in
  let record_completion now =
    if now < phase then incr cold1_ops
    else if now < 2 * phase then incr hot_ops
    else incr cold2_ops
  in
  (* The protected state: a handful of words homed beside the lock, as in
     [Numa_stress] — the critical section is data traffic, not pure
     compute, so its cost depends on where the holder sits relative to
     the data's home station and the regime change is visible in the
     memory system, not only in the queue. *)
  let data = Array.init 8 (fun i -> Machine.alloc machine ~home:0 i) in
  let cs_accesses = 4 in
  let critical_section ctx =
    let t_in = Machine.now machine in
    for i = 1 to cs_accesses do
      let c = data.(i land 7) in
      if i land 1 = 0 then ignore (Ctx.read ctx c) else Ctx.write ctx c i;
      Ctx.work ctx 6
    done;
    let spent = Machine.now machine - t_in in
    if spent < hold then Ctx.work ctx (hold - spent)
  in
  let think_for ctx rng think =
    if think > 0 then Ctx.work ctx ((think / 2) + Rng.int rng (max 1 think))
  in
  let one_op ctx rng ~think =
    think_for ctx rng think;
    lock.Lock.acquire ctx;
    critical_section ctx;
    lock.Lock.release ctx;
    record_completion (Machine.now machine)
  in
  let rng0 = Rng.create config.seed in
  (* The trickle processors run all three plateaus; their think time is
     what makes the first and last cold. *)
  for proc = 0 to config.p_cold - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng0) in
    Process.spawn eng (fun () ->
        let rng = Ctx.rng ctx in
        while Machine.now machine < 3 * phase do
          let think =
            let now = Machine.now machine in
            if now >= phase && now < 2 * phase then think_hot else think_cold
          in
          one_op ctx rng ~think
        done)
  done;
  (* The peak processors sleep through the first plateau, hammer through
     the second, and stop. They acquire through the timed face with the
     phase edge as the deadline: daytime work abandoned at dusk must not
     leave a saturated queue draining into the night — without the
     deadline, the overhang of waiters stuck inside a blocking acquire
     pollutes the second cold plateau for every algorithm (worst for
     test&set, whose saturated hand-offs are slowest). *)
  for proc = config.p_cold to config.p_hot - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng0) in
    Process.spawn eng (fun () ->
        let rng = Ctx.rng ctx in
        Ctx.work ctx (phase - Machine.now machine);
        let deadline = 2 * phase in
        while Machine.now machine < deadline do
          think_for ctx rng think_hot;
          if
            Machine.now machine < deadline
            && lock.Lock.try_acquire_for ctx ~deadline
          then begin
            critical_section ctx;
            lock.Lock.release ctx;
            record_completion (Machine.now machine)
          end
        done)
  done;
  Engine.run eng;
  Verify.finish verify ~now:(Machine.now machine);
  let cls = Verify.lock_class obs_class in
  let phase_ms = config.phase_us /. 1000.0 in
  {
    algo = config.algo;
    algo_name = lock.Lock.name;
    p_hot = config.p_hot;
    p_cold = config.p_cold;
    n_clusters = config.n_clusters;
    phase_us = config.phase_us;
    cold1_ops = !cold1_ops;
    hot_ops = !hot_ops;
    cold2_ops = !cold2_ops;
    cold_throughput_ops_ms =
      float_of_int (!cold1_ops + !cold2_ops) /. (2.0 *. phase_ms);
    hot_throughput_ops_ms = float_of_int !hot_ops /. phase_ms;
    morphs_up = Obs.morphs_up obs ~cls;
    morphs_down = Obs.morphs_down obs ~cls;
    final_shape = Obs.current_shape obs ~cls;
    final_free = lock.Lock.is_free ();
    lockdep_violations = Verify.violation_count verify;
    obs_rows = Obs.profile_rows obs;
  }
