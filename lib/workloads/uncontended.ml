(* Uncontended lock latency (Section 4.1.1).

   A single processor acquires and releases a local lock in a tight loop;
   the reported figure is the time per iteration, which — as in the paper's
   measurements — includes the measurement loop itself (counter update,
   branch, timer bookkeeping). *)

open Eventsim
open Hector
open Locks

(* Cycles of loop bookkeeping per iteration of the measurement loop. *)
let loop_overhead = 18

type result = {
  algo : Lock.algo;
  pair_us : float; (* measured lock+unlock+loop time *)
  predicted_us : float option; (* static model, where one exists *)
}

let model_algo = function
  | Lock.Mcs_original -> Some Instr_model.Mcs_original
  | Lock.Mcs_h1 -> Some Instr_model.Mcs_h1
  | Lock.Mcs_h2 -> Some Instr_model.Mcs_h2
  | Lock.Spin _ -> Some Instr_model.Spin
  | Lock.Mcs_cas | Lock.Null | Lock.Clh | Lock.Ticket | Lock.Anderson
  | Lock.Spin_then_block _ | Lock.Cohort _ | Lock.Hmcs _ | Lock.Cna _
  | Lock.Rw _ | Lock.Adaptive _ ->
    None

let run ?(cfg = Config.hector) ?(iters = 2000) algo =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let lock = Lock.make machine ~home:0 algo in
  let ctx = Ctx.create machine ~proc:0 (Rng.create 99) in
  let total = ref 0 in
  Process.spawn eng (fun () ->
      for _ = 1 to iters do
        let t0 = Machine.now machine in
        lock.Lock.acquire ctx;
        lock.Lock.release ctx;
        Ctx.work ctx loop_overhead;
        total := !total + (Machine.now machine - t0)
      done);
  Engine.run eng;
  {
    algo;
    pair_us = Config.us_of_cycles cfg !total /. float_of_int iters;
    predicted_us =
      Option.map
        (fun a ->
          Config.us_of_cycles cfg (Instr_model.predicted_cycles cfg a + loop_overhead))
        (model_algo algo);
  }

let run_all ?cfg ?iters () =
  List.map (fun a -> run ?cfg ?iters a)
    [ Lock.Mcs_original; Lock.Mcs_h1; Lock.Mcs_h2;
      Lock.Spin { max_backoff_us = 35.0 } ]
