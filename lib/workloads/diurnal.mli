(** The diurnal load cycle (the ADAPTIVE experiment): load ramps
    cold → hot → cold in three equal plateaus — a same-cluster trickle
    with long think times, then every processor across every cluster with
    short think times, then the trickle again. Completed operations are
    classified into phases by completion time, so per-phase throughput
    compares a morphing {!Locks.Lock.Adaptive} lock against each static
    shape on the regime that shape is best at. A Verify checker and an
    Obs observer are always installed; the morph counters in the result
    come from the observer. *)

open Hector
open Locks

type config = {
  p_hot : int;  (** processors at the daytime peak *)
  p_cold : int;  (** processors in the overnight trickle *)
  n_clusters : int;
  phase_us : float;  (** length of each of the three plateaus *)
  hold_us : float;  (** critical-section work *)
  think_cold_us : float;
  think_hot_us : float;
  algo : Lock.algo;
  seed : int;
}

(** 16 hot / 1 cold processor over 4 clusters, 1.2 ms plateaus, 1.5 µs
    holds, 5 µs cold and 3 µs hot think times, [Lock.adaptive]. *)
val default_config : config

type result = {
  algo : Lock.algo;
  algo_name : string;
  p_hot : int;
  p_cold : int;
  n_clusters : int;
  phase_us : float;
  cold1_ops : int;
  hot_ops : int;
  cold2_ops : int;
  cold_throughput_ops_ms : float;  (** both cold plateaus combined *)
  hot_throughput_ops_ms : float;
  morphs_up : int;  (** observer-counted promotions; 0 for static shapes *)
  morphs_down : int;
  final_shape : int;  (** observer gauge: shape index after the run *)
  final_free : bool;
  lockdep_violations : int;  (** must be 0 *)
  obs_rows : Obs.row list;
}

(** The lock-order class the lock reports under ("diurnal"). *)
val obs_class : string

val run : ?cfg:Config.t -> ?config:config -> unit -> result
