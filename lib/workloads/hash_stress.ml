(* Hash-table locking-granularity ablation (experiment ABL1).

   Section 2.4 claims the hybrid strategy achieves, for concurrent
   independent requests, performance comparable to a pure fine-grained
   design — while a pure coarse-grained design serialises everything. This
   workload drives [p] processors through [Khash.with_element] on disjoint
   keys (plus a configurable fraction of shared-key operations) under all
   three granularities and reports latency, atomic-operation counts and the
   number of lock words each design needs. *)

open Eventsim
open Hector
open Locks
open Hkernel

type config = {
  p : int;
  keys_per_proc : int;
  ops : int; (* operations per processor *)
  element_work_us : float; (* work done while holding the element *)
  think_us : float; (* work between operations *)
  shared_fraction : float; (* chance an op targets a key of processor 0 *)
  lock_algo : Lock.algo;
  seed : int;
}

(* Defaults model one cluster's table at the paper's optimal cluster size:
   hierarchical clustering is what bounds the processors hitting a table,
   and the hybrid-vs-fine equivalence claim is made in that regime. *)
let default_config =
  {
    p = 4;
    keys_per_proc = 8;
    ops = 200;
    element_work_us = 10.0;
    think_us = 40.0;
    shared_fraction = 0.0;
    lock_algo = Lock.Mcs_h2;
    seed = 17;
  }

type result = {
  granularity : Khash.granularity;
  summary : Measure.summary;
  atomics : int;
  lock_words : int; (* space: coarse = 1; fine = bins + elements *)
  reserve_conflicts : int;
}

let run ?(cfg = Config.hector) ?(config = default_config) granularity =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let homes = List.init (Machine.n_procs machine) (fun i -> i) in
  let table =
    Khash.create machine ~granularity ~nbins:64 ~lock_algo:config.lock_algo
      ~homes
  in
  let key ~proc ~j = (1000 * proc) + j in
  for proc = 0 to config.p - 1 do
    for j = 0 to config.keys_per_proc - 1 do
      ignore (Khash.insert_untimed table (key ~proc ~j) ~status0:0 ~make:(fun _ -> ()))
    done
  done;
  let work = Config.cycles_of_us cfg config.element_work_us in
  let think = Config.cycles_of_us cfg config.think_us in
  let stat = Stat.create (Khash.granularity_name granularity) in
  let rng0 = Rng.create config.seed in
  for proc = 0 to config.p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng0) in
    Process.spawn eng (fun () ->
        let rng = Ctx.rng ctx in
        for _ = 1 to config.ops do
          if think > 0 then
            Ctx.work ctx ((think / 2) + Rng.int rng (max 1 think));
          let target_proc =
            if
              config.shared_fraction > 0.0
              && Rng.float rng < config.shared_fraction
            then 0
            else proc
          in
          let j = Rng.int rng config.keys_per_proc in
          let t0 = Machine.now machine in
          let r =
            Khash.with_element table ctx (key ~proc:target_proc ~j) (fun _ ->
                Ctx.work ctx work)
          in
          assert (r <> None);
          Stat.add stat (Machine.now machine - t0 - work)
        done)
  done;
  Engine.run eng;
  let lock_words =
    match granularity with
    | Khash.Hybrid | Khash.Coarse -> 1
    | Khash.Sharded -> Khash.shards table
    | Khash.Fine -> 64 + Khash.size table
  in
  {
    granularity;
    summary =
      Measure.of_stat cfg ~label:(Khash.granularity_name granularity) stat;
    atomics = Machine.atomics machine;
    lock_words;
    reserve_conflicts = Khash.reserve_conflicts table;
  }

let run_all ?cfg ?config () =
  List.map (fun g -> run ?cfg ?config g) [ Khash.Hybrid; Khash.Coarse; Khash.Fine ]
