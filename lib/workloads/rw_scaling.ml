(* Read-mostly page-descriptor lookups (the RW-SCALING experiment).

   HURRICANE's answer to read-mostly data is per-cluster replication
   through the combining tree; the RW lock family answers with per-cluster
   reader indicators. This workload races the candidates over the same
   job: [p] processors across [n_clusters] clusters doing a read/write mix
   over one page descriptor at 95/99/99.9% read ratios.

   - [Mutex]: every access behind one exclusive lock — the baseline every
     writer-serialising [Lock.algo] is stuck at: readers queue like
     writers, read parallelism is 1 by construction.
   - [Rw_lock]: the {!Locks.Rwlock} family — readers CAS their own
     cluster's indicator (or a single central word for the [centralised]
     baseline) and proceed in parallel; writers sweep.
   - [Seqlock_style]: the PR 5 optimistic path — readers sample/validate a
     sequence word and retry through a locked fallback; writers mutate
     under an exclusive lock.
   - [Replicated]: the HURRICANE-shaped comparator — one replica of the
     descriptor per cluster; readers load their local replica unlocked,
     writers take the exclusive lock and store through every replica (the
     update broadcast standing in for invalidation+refault).

   A Verify checker and an Obs observer are always installed: the RW smoke
   gate asserts zero lockdep violations and reader parallelism > 1, so
   both facts come from instrumentation, not trust. Read-section
   concurrency is additionally tracked host-side for every style (peak
   concurrent readers inside the data access), which is what separates the
   read-parallel styles from any exclusive lock. *)

open Eventsim
open Hector
open Hkernel
open Locks

type style =
  | Mutex of Lock.algo
  | Rw_lock of { writer : Lock.algo; policy : Rwlock.policy; centralised : bool }
  | Seqlock_style of { writer : Lock.algo }
  | Replicated of { writer : Lock.algo }

let style_name = function
  | Mutex a -> "mutex-" ^ Lock.algo_name a
  | Rw_lock { writer; policy; centralised } ->
    Lock.algo_name (Lock.Rw { writer; policy; centralised })
  | Seqlock_style { writer } -> "seqlock+" ^ Lock.algo_name writer
  | Replicated { writer } -> "repl+" ^ Lock.algo_name writer

type config = {
  p : int;
  n_clusters : int;
  ops : int; (* per processor *)
  read_ratio : float;
  read_work_us : float; (* work inside the read section *)
  write_work_us : float; (* work inside the write section *)
  think_us : float; (* work between operations *)
  style : style;
  seed : int;
}

let default_config =
  {
    p = 8;
    n_clusters = 2;
    ops = 200;
    read_ratio = 0.99;
    read_work_us = 2.0;
    write_work_us = 4.0;
    think_us = 1.0;
    style =
      Rw_lock
        {
          writer = Lock.c_mcs_mcs;
          policy = Rwlock.Writer_blocking;
          centralised = false;
        };
    seed = 31;
  }

type result = {
  style : style;
  style_name : string;
  read_ratio : float;
  n_clusters : int;
  p : int;
  read_summary : Measure.summary;
  write_summary : Measure.summary;
  makespan_us : float;
  throughput_ops_ms : float; (* all completed ops per virtual ms *)
  read_throughput_ops_ms : float; (* completed reads per virtual ms *)
  reads_done : int;
  writes_done : int;
  peak_readers : int; (* host-tracked concurrent read sections *)
  read_remote : int; (* RW styles: remote read-path indicator ops *)
  seq_aborts : int; (* seqlock style: optimistic aborts *)
  lockdep_violations : int;
  obs_rows : Obs.row list;
}

let obs_class = "rw"

let run ?(cfg = Config.hector) ?(config = default_config) () =
  if config.read_ratio < 0.0 || config.read_ratio > 1.0 then
    invalid_arg "Rw_scaling.run: read_ratio out of [0,1]";
  if config.n_clusters <= 0 || config.n_clusters > config.p then
    invalid_arg "Rw_scaling.run: n_clusters out of range";
  if config.p > Config.n_procs cfg then
    invalid_arg "Rw_scaling.run: p exceeds the machine";
  let needs_cas =
    match config.style with
    | Rw_lock _ -> true
    | Mutex a | Seqlock_style { writer = a } | Replicated { writer = a } ->
      Lock.needs_cas a
  in
  let cfg =
    if needs_cas && not cfg.Config.has_cas then Config.with_cas cfg else cfg
  in
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let clustering =
    Clustering.create ~n_procs:config.p
      ~cluster_size:((config.p + config.n_clusters - 1) / config.n_clusters)
  in
  (* Total over every machine processor, not just the [p] the workload
     uses: lock constructors home per-cluster state by sweeping the whole
     machine. Idle processors fold onto the active prefix, which leaves
     each cluster's lowest (= home) processor unchanged. *)
  let topo =
    let cl = Clustering.cluster_of_proc clustering in
    Lock_core.topo ~n_clusters:(Clustering.n_clusters clustering)
      ~cluster_of:(fun p -> cl (p mod config.p))
  in
  let verify = Verify.create ~n_procs:(Config.n_procs cfg) () in
  Machine.set_verify machine (Some verify);
  let obs =
    Obs.create
      ~cluster_of:(Clustering.cluster_of_proc clustering)
      ~n_clusters:(Clustering.n_clusters clustering)
      ~n_procs:(Config.n_procs cfg) ()
  in
  Machine.set_obs machine (Some obs);
  (* The descriptor word every style guards; homed with the lock. *)
  let desc = Machine.alloc machine ~label:"pagedesc" ~home:0 1 in
  (* Style-specific state. *)
  let rw =
    match config.style with
    | Rw_lock { writer; policy; centralised } ->
      Some (Lock.make_rw machine ~vclass:obs_class ~topo ~policy ~centralised writer)
    | _ -> None
  in
  let mutex =
    match config.style with
    | Mutex a -> Some (Lock.make machine ~vclass:obs_class ~topo a)
    | Seqlock_style { writer } | Replicated { writer } ->
      Some (Lock.make machine ~vclass:(obs_class ^ ".writer") ~topo writer)
    | Rw_lock _ -> None
  in
  let seqlock =
    match config.style with
    | Seqlock_style _ -> Some (Seqlock.create machine ~vclass:obs_class ())
    | _ -> None
  in
  let replicas =
    match config.style with
    | Replicated _ ->
      (* One replica per cluster, homed at the cluster's lowest proc. *)
      let homes = Array.make config.n_clusters 0 in
      for p = config.p - 1 downto 0 do
        homes.(Clustering.cluster_of_proc clustering p) <- p
      done;
      Some
        (Array.init config.n_clusters (fun c ->
             Machine.alloc machine
               ~label:(Printf.sprintf "pagedesc.rep%d" c)
               ~home:homes.(c) 1))
    | _ -> None
  in
  let read_work = Config.cycles_of_us cfg config.read_work_us in
  let write_work = Config.cycles_of_us cfg config.write_work_us in
  let think = Config.cycles_of_us cfg config.think_us in
  let read_stat = Stat.create "read" in
  let write_stat = Stat.create "write" in
  let reads_done = ref 0 and writes_done = ref 0 in
  let inside = ref 0 and peak = ref 0 in
  let enter () =
    incr inside;
    if !inside > !peak then peak := !inside
  in
  let leave () = decr inside in
  (* The data access every read performs, bracketed by the host-side
     concurrency gauge. *)
  let read_body ctx cell =
    enter ();
    let v = Ctx.read ctx cell in
    if read_work > 0 then Ctx.work ctx read_work;
    leave ();
    v
  in
  let do_read ctx =
    match config.style with
    | Mutex _ ->
      let m = Option.get mutex in
      m.Lock.acquire ctx;
      ignore (read_body ctx desc);
      m.Lock.release ctx
    | Rw_lock _ ->
      let l = Option.get rw in
      Rwlock.acquire_read l ctx;
      ignore (read_body ctx desc);
      Rwlock.release_read l ctx
    | Seqlock_style _ ->
      let s = Option.get seqlock in
      let m = Option.get mutex in
      let rec attempt () =
        match Seqlock.read_begin s ctx with
        | Some seq ->
          let v = read_body ctx desc in
          if not (Seqlock.read_validate s ctx seq) then attempt () else ignore v
        | None ->
          (* Writer inside: locked fallback, like Khash.lookup. *)
          m.Lock.acquire ctx;
          ignore (read_body ctx desc);
          m.Lock.release ctx
      in
      attempt ()
    | Replicated _ ->
      let reps = Option.get replicas in
      ignore (read_body ctx reps.(Clustering.cluster_of_proc clustering (Ctx.proc ctx)))
  in
  let do_write ctx i =
    match config.style with
    | Mutex _ ->
      let m = Option.get mutex in
      m.Lock.acquire ctx;
      Ctx.write ctx desc i;
      if write_work > 0 then Ctx.work ctx write_work;
      m.Lock.release ctx
    | Rw_lock _ ->
      let l = Option.get rw in
      Rwlock.acquire l ctx;
      Ctx.write ctx desc i;
      if write_work > 0 then Ctx.work ctx write_work;
      Rwlock.release l ctx
    | Seqlock_style _ ->
      let s = Option.get seqlock in
      let m = Option.get mutex in
      m.Lock.acquire ctx;
      Seqlock.with_write s ctx (fun () ->
          Ctx.write ctx desc i;
          if write_work > 0 then Ctx.work ctx write_work);
      m.Lock.release ctx
    | Replicated _ ->
      let reps = Option.get replicas in
      let m = Option.get mutex in
      m.Lock.acquire ctx;
      (* The update broadcast: one store per cluster replica, the traffic
         replication trades for its local reads. *)
      Array.iter (fun r -> Ctx.write ctx r i) reps;
      if write_work > 0 then Ctx.work ctx write_work;
      m.Lock.release ctx
  in
  let rng0 = Rng.create config.seed in
  for proc = 0 to config.p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng0) in
    Process.spawn eng (fun () ->
        let rng = Ctx.rng ctx in
        for i = 1 to config.ops do
          if think > 0 then
            Ctx.work ctx ((think / 2) + Rng.int rng (max 1 think));
          if Rng.float rng < config.read_ratio then begin
            let t0 = Machine.now machine in
            do_read ctx;
            incr reads_done;
            Stat.add read_stat (Machine.now machine - t0 - read_work)
          end
          else begin
            let t0 = Machine.now machine in
            do_write ctx ((proc * config.ops) + i);
            incr writes_done;
            Stat.add write_stat (Machine.now machine - t0 - write_work)
          end
        done)
  done;
  Engine.run eng;
  Verify.finish verify ~now:(Machine.now machine);
  (match rw with Some l -> assert (Rwlock.is_free l) | None -> ());
  let makespan_us = Config.us_of_cycles cfg (Machine.now machine) in
  let per_ms total =
    if makespan_us > 0.0 then float_of_int total /. (makespan_us /. 1000.0)
    else 0.0
  in
  {
    style = config.style;
    style_name = style_name config.style;
    read_ratio = config.read_ratio;
    n_clusters = config.n_clusters;
    p = config.p;
    read_summary = Measure.of_stat cfg ~label:"read" read_stat;
    write_summary = Measure.of_stat cfg ~label:"write" write_stat;
    makespan_us;
    throughput_ops_ms = per_ms (!reads_done + !writes_done);
    read_throughput_ops_ms = per_ms !reads_done;
    reads_done = !reads_done;
    writes_done = !writes_done;
    peak_readers = !peak;
    read_remote = (match rw with Some l -> Rwlock.read_remote l | None -> 0);
    seq_aborts =
      (match seqlock with Some s -> Seqlock.read_aborts s | None -> 0);
    lockdep_violations = Verify.violation_count verify;
    obs_rows = Obs.profile_rows obs;
  }
