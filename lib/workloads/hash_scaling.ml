(* Sharded hash-table scaling (the HASH-SCALING experiment).

   The hybrid table of ABL1 still funnels every operation through one
   coarse lock; hierarchical clustering bounds the processors behind it,
   but within a cluster the lock is the ceiling. This workload measures
   the two mechanisms PR 5 adds to lift it:

   - [Sharded] granularity: the bin array split over per-shard coarse
     locks homed on distinct PMMs, so independent operations stop
     serialising (and stop hammering one memory module);
   - the per-shard seqlock read path: read-only lookups probe the chain
     unlocked and validate, paying a pair of loads instead of a lock
     acquire/release.

   [p] processors run a read/update mix over a pre-populated table:
   lookups target the whole key space (so readers collide with writers),
   updates target the processor's own keys through [Khash.with_element].
   Reported: lookup and update latency, whole-run throughput, and the
   optimistic hit/fallback split. Compare [Hybrid] against [Sharded] at
   several shard counts, with the optimistic path on and off. *)

open Eventsim
open Hector
open Locks
open Hkernel

type config = {
  p : int;
  nbins : int;
  shards : int; (* meaningful for [Sharded] only *)
  keys_per_proc : int;
  ops : int; (* operations per processor *)
  read_ratio : float; (* fraction of ops that are read-only lookups *)
  churn_fraction : float;
  (* fraction of non-read ops that delete and re-insert their key instead
     of updating in place: chain mutations, i.e. seqlock writer traffic *)
  element_work_us : float; (* work done while holding an element *)
  think_us : float; (* work between operations *)
  granularity : Khash.granularity;
  optimistic : bool; (* lookups via {!Khash.lookup} vs {!Khash.lookup_locked} *)
  lock_algo : Lock.algo;
  seed : int;
}

let default_config =
  {
    p = 8;
    nbins = 64;
    shards = 4;
    keys_per_proc = 16;
    ops = 150;
    read_ratio = 0.9;
    churn_fraction = 0.3;
    element_work_us = 5.0;
    think_us = 10.0;
    granularity = Khash.Sharded;
    optimistic = true;
    lock_algo = Lock.Mcs_h2;
    seed = 23;
  }

type result = {
  granularity : Khash.granularity;
  shards : int;
  optimistic : bool;
  read_summary : Measure.summary; (* lookup latency *)
  update_summary : Measure.summary; (* with_element latency, work excluded *)
  makespan_us : float;
  throughput_ops_ms : float; (* completed ops per virtual millisecond *)
  optimistic_hits : int;
  optimistic_fallbacks : int;
  reserve_conflicts : int;
  atomics : int;
  obs_rows : Obs.row list; (* per-class profile, when [observe] *)
}

let run ?(cfg = Config.hector) ?(config = default_config) ?(observe = false) ()
    =
  if config.read_ratio < 0.0 || config.read_ratio > 1.0 then
    invalid_arg "Hash_scaling.run: read_ratio out of [0,1]";
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let obs =
    if observe then begin
      let o =
        Obs.create
          ~cluster_of:(fun _ -> 0)
          ~n_clusters:1 ~n_procs:(Config.n_procs cfg) ()
      in
      Machine.set_obs machine (Some o);
      Some o
    end
    else None
  in
  let homes = List.init (Machine.n_procs machine) (fun i -> i) in
  let table =
    Khash.create machine ~granularity:config.granularity ~nbins:config.nbins
      ~shards:config.shards ~lock_algo:config.lock_algo ~homes
  in
  let n_keys = config.p * config.keys_per_proc in
  let key ~proc ~j = (config.keys_per_proc * proc) + j in
  for proc = 0 to config.p - 1 do
    for j = 0 to config.keys_per_proc - 1 do
      ignore
        (Khash.insert_untimed table (key ~proc ~j) ~status0:0 ~make:(fun _ -> ()))
    done
  done;
  let work = Config.cycles_of_us cfg config.element_work_us in
  let think = Config.cycles_of_us cfg config.think_us in
  let read_stat = Stat.create "lookup" in
  let update_stat = Stat.create "update" in
  let lookup =
    if config.optimistic then Khash.lookup else Khash.lookup_locked
  in
  let rng0 = Rng.create config.seed in
  for proc = 0 to config.p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng0) in
    Process.spawn eng (fun () ->
        let rng = Ctx.rng ctx in
        for _ = 1 to config.ops do
          if think > 0 then
            Ctx.work ctx ((think / 2) + Rng.int rng (max 1 think));
          if Rng.float rng < config.read_ratio then begin
            (* Read-only lookup of any key: readers roam the whole table,
               colliding with writers on every shard. A key can be absent
               mid-churn; the lookup's answer is still consistent. *)
            let k = Rng.int rng n_keys in
            let t0 = Machine.now machine in
            ignore (lookup table ctx k);
            Stat.add read_stat (Machine.now machine - t0)
          end
          else begin
            let k = key ~proc ~j:(Rng.int rng config.keys_per_proc) in
            if Rng.float rng < config.churn_fraction then begin
              (* Churn: delete the element and re-insert the key — the
                 chain mutations that drive the seqlock's writer side.
                 Our own keys are only ever written by us, so the
                 reservation must succeed. *)
              let t0 = Machine.now machine in
              (match Khash.reserve_existing table ctx k with
              | None -> assert false
              | Some _ -> ());
              let removed = Khash.remove table ctx k in
              assert removed;
              ignore (Khash.insert table ctx k ~make:(fun _ -> ()));
              Stat.add update_stat (Machine.now machine - t0)
            end
            else begin
              (* Update in place: element work under the granularity's
                 protection. *)
              let t0 = Machine.now machine in
              let r =
                Khash.with_element table ctx k (fun _ -> Ctx.work ctx work)
              in
              assert (r <> None);
              Stat.add update_stat (Machine.now machine - t0 - work)
            end
          end
        done)
  done;
  Engine.run eng;
  let makespan = Machine.now machine in
  let total_ops = config.p * config.ops in
  let makespan_us = Config.us_of_cycles cfg makespan in
  {
    granularity = config.granularity;
    shards = Khash.shards table;
    optimistic = config.optimistic;
    read_summary = Measure.of_stat cfg ~label:"lookup" read_stat;
    update_summary = Measure.of_stat cfg ~label:"update" update_stat;
    makespan_us;
    throughput_ops_ms =
      (if makespan_us > 0.0 then float_of_int total_ops /. (makespan_us /. 1000.)
       else 0.0);
    optimistic_hits = Khash.optimistic_hits table;
    optimistic_fallbacks = Khash.optimistic_fallbacks table;
    reserve_conflicts = Khash.reserve_conflicts table;
    atomics = Machine.atomics machine;
    obs_rows = (match obs with Some o -> Obs.profile_rows o | None -> []);
  }
