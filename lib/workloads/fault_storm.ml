(* Fault-injection storm: degradation and recovery under injected faults.

   [p] worker processors run the hybrid-locking fast path — a coarse MCS
   lock to search and reserve one of [k] elements, reserve bit held across
   the "use" — over [s] independent structures (like per-cluster instances
   of one kernel structure), while a fault plan injects holder stalls at
   the two places a stall hurts most (inside the coarse critical section
   and while a reserve bit is held), plus RPC delay/loss and memory
   hot-spots. Every
   [rpc_every]-th operation additionally calls an RPC service on a
   dedicated server processor; a "hog" process keeps the service's status
   word reserved for long windows, so those calls fail with
   [Would_deadlock] in streaks — the unbounded-retry hazard.

   Three mechanisms are compared:

   - [No_timeout]: the pre-existing protocol. Plain [Mcs.acquire], unbounded
     [Reserve.spin_until_clear], unbounded RPC retry. A stalled holder
     stalls everyone behind it.
   - [Timeout]: [Mcs.acquire_with_timeout] and
     [Reserve.spin_until_clear_timeout]; on expiry the worker moves to
     another structure, deferring the op to local fallback work only after
     bouncing off all of them. RPC retry still unbounded.
   - [Bounded_retry]: [Timeout] plus [Rpc.call_until_resolved
     ~max_attempts]; a [Gave_up] call falls back to deferred local work
     instead of retrying into a reserved service forever.

   All shared-word traffic for the server's status goes through RPC
   services on the server processor, whose interrupt context serialises
   them — reserve bits stay plain loads and stores. Services are
   re-executed on a resend after a lost reply (at-least-once), so the
   worker service is a self-contained reserve/work/clear and the hog
   services are idempotent.

   With [fault = None] nothing is injected and all three mechanisms take
   only fast paths. *)

open Eventsim
open Hector
open Locks
open Hkernel

type mechanism = No_timeout | Timeout | Bounded_retry

let mechanism_name = function
  | No_timeout -> "no-timeout"
  | Timeout -> "timeout"
  | Bounded_retry -> "bounded-retry"

type config = {
  p : int;  (* worker processors *)
  s : int;  (* independent structures, each with its own coarse lock *)
  k : int;  (* elements per structure *)
  hold_us : float;  (* reserve-bit hold (the element "use") *)
  think_us : float;
  window_us : float;
  rpc_every : int;  (* one worker op in [rpc_every] also calls the server *)
  lock_timeout_us : float;
  reserve_timeout_us : float;
  max_attempts : int;  (* RPC attempt budget under Bounded_retry *)
  hog_hold_us : float;  (* how long the hog keeps the service reserved *)
  hog_idle_us : float;  (* gap between hog holds *)
  seed : int;
  fault : Fault.config option;
}

let default_config =
  {
    p = 8;
    s = 2;
    k = 8;
    hold_us = 2.0;
    think_us = 3.0;
    window_us = 30_000.0;
    rpc_every = 4;
    (* Both timeouts sit well above the natural waits (queue transit and a
       2 us reserve hold) and well below an injected stall, so with faults
       off neither fires and the three mechanisms behave identically. *)
    lock_timeout_us = 250.0;
    reserve_timeout_us = 50.0;
    max_attempts = 4;
    hog_hold_us = 400.0;
    hog_idle_us = 600.0;
    seed = 11;
    fault = None;
  }

type result = {
  mechanism : mechanism;
  ops : int;  (* completed element operations *)
  deferred : int;  (* ops deferred to local work after a lock timeout *)
  rpc_ok : int;
  rpc_calls : int;
  rpc_resends : int;
  rpc_gave_ups : int;
  lock_timeouts : int;
  lock_gcs : int;  (* abandoned queue nodes collected by releases *)
  reserve_timeouts : int;
  stalls_injected : int;
  delays_injected : int;
  drops_injected : int;
  hotspots_injected : int;
  recovery : Measure.summary;
      (* per injected stall: time from stall start to the next completed
         reserve acquisition by any worker *)
}

(* Time from each injected stall's start to the first critical-section
   entry at or after it — how long the storm freezes everyone else.
   [entries] is nondecreasing (events fire in time order). *)
let recovery_stat ~label stalls entries =
  let stat = Stat.create label in
  let entries = ref entries in
  List.iter
    (fun (start, _dur) ->
      let rec skip () =
        match !entries with
        | e :: rest when e < start ->
          entries := rest;
          skip ()
        | _ -> ()
      in
      skip ();
      match !entries with
      | e :: _ -> Stat.add stat (e - start)
      | [] -> ())
    stalls;
  stat

let run ?(cfg = Config.hector) ?(config = default_config) ?verify ?obs
    mechanism =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let n = Config.n_procs cfg in
  if config.p + 2 > n then invalid_arg "Fault_storm.run: p + 2 procs needed";
  let server = config.p in
  let hog = config.p + 1 in
  let rng = Rng.create config.seed in
  let ctxs = Array.init n (fun proc -> Ctx.create machine ~proc (Rng.split rng)) in
  let rpc = Rpc.create machine ctxs Costs.default in
  let plan = Option.map (fun fc -> Fault.create (Fault.validate fc)) config.fault in
  Machine.set_fault_plan machine plan;
  Rpc.set_fault_plan rpc plan;
  (* Lockdep: installed before any lock traffic so the checker sees every
     acquisition; the watchdog event keeps itself scheduled until the
     storm's own processes drain. Note that reply-drop faults re-execute
     services at-least-once, so the clear service can legitimately run
     twice — run the checker with a no-drop plan (see EXPERIMENTS.md). *)
  (match verify with
  | None -> ()
  | Some v ->
    Machine.set_verify machine (Some v);
    Verify.watchdog v eng);
  (* Contention observer: same hook sites, pure host-side profiling — with
     or without it the storm's simulated timing is identical. *)
  (match obs with None -> () | Some o -> Machine.set_obs machine (Some o));
  (* [s] independent structures — separate coarse locks, separate element
     arrays — like per-cluster instances of one kernel structure. A worker
     whose timed acquire expires moves to another structure instead of
     waiting out a stalled holder; the unbounded protocol has no such
     escape. Locks and elements are spread over the workers' PMMs so
     hot-spot windows hit real traffic. *)
  let locks =
    Array.init config.s (fun si ->
        Mcs.create machine ~home:(si mod config.p) ~variant:Mcs.H2)
  in
  let status =
    Array.init config.s (fun si ->
        Array.init config.k (fun i ->
            Machine.alloc machine ~home:((si + i) mod config.p) 0))
  in
  let payload =
    Array.init config.s (fun si ->
        Array.init config.k (fun i ->
            Machine.alloc machine ~home:((si + i) mod config.p) 0))
  in
  let srv_status = Machine.alloc machine ~home:server 0 in
  let srv_payload = Machine.alloc machine ~home:server 0 in
  let hold = Config.cycles_of_us cfg config.hold_us in
  let think = Config.cycles_of_us cfg config.think_us in
  let t_end = Config.cycles_of_us cfg config.window_us in
  let lock_timeout = Config.cycles_of_us cfg config.lock_timeout_us in
  let reserve_timeout = Config.cycles_of_us cfg config.reserve_timeout_us in
  let ops = ref 0 in
  let deferred = ref 0 in
  let rpc_ok = ref 0 in
  let reserve_timeouts = ref 0 in
  let entries_rev = ref [] in
  (* The element "use": touch the payload under the reserve bit. *)
  let use_element ctx si i =
    Ctx.fault_point ctx ~site:0;
    let accesses = max 1 (hold / 40) in
    for a = 1 to accesses do
      if a land 1 = 0 then ignore (Ctx.read ctx payload.(si).(i))
      else Ctx.write ctx payload.(si).(i) a;
      Ctx.work ctx 14
    done
  in
  (* The RPC service: one self-contained reserve/work/clear on the server's
     status word. Reserved (the hog holds it) -> Would_deadlock. *)
  let server_service tctx =
    if not (Reserve.try_reserve tctx srv_status) then Rpc.Would_deadlock
    else begin
      let v = Ctx.read tctx srv_payload in
      Ctx.write tctx srv_payload (v + 1);
      Ctx.work tctx 60;
      Reserve.clear tctx srv_status;
      Rpc.Ok (v + 1)
    end
  in
  (* Hog services: idempotent under at-least-once re-execution. *)
  let hog_reserve_service tctx =
    if Reserve.write_reserved srv_status then Rpc.Ok 1
    else begin
      ignore (Reserve.try_reserve tctx srv_status);
      Rpc.Ok 0
    end
  in
  let hog_clear_service tctx =
    Reserve.clear tctx srv_status;
    Rpc.Ok 0
  in
  (* Workers. *)
  for proc = 0 to config.p - 1 do
    let ctx = ctxs.(proc) in
    Process.spawn eng (fun () ->
        let backoff = Backoff.of_us cfg ~max_us:35.0 () in
        let iter = ref 0 in
        (* One element operation starting at structure [si]. A timed-out
           coarse acquire or reserve spin moves on to the next structure —
           the escape the unbounded protocol lacks — and after bouncing off
           all of them the op is deferred to local fallback work. *)
        let rec element_op tries si =
          if tries >= config.s then begin
            incr deferred;
            Ctx.work ctx (hold / 2);
            false
          end
          else begin
            let lock = locks.(si) in
            let got =
              match mechanism with
              | No_timeout ->
                Mcs.acquire lock ctx;
                true
              | Timeout | Bounded_retry ->
                Mcs.acquire_with_timeout lock ctx ~timeout:lock_timeout
            in
            if not got then element_op (tries + 1) ((si + 1) mod config.s)
            else begin
              Ctx.fault_point ctx ~site:1;
              let i = Rng.int (Ctx.rng ctx) config.k in
              let reserved = Reserve.try_reserve ctx status.(si).(i) in
              Mcs.release lock ctx;
              if reserved then begin
                entries_rev := Machine.now machine :: !entries_rev;
                use_element ctx si i;
                let v = Ctx.read ctx payload.(si).(i) in
                Ctx.write ctx payload.(si).(i) (v + 1);
                Reserve.clear ctx status.(si).(i);
                incr ops;
                true
              end
              else begin
                match mechanism with
                | No_timeout ->
                  Reserve.spin_until_clear ctx backoff status.(si).(i);
                  element_op tries si
                | Timeout | Bounded_retry ->
                  if
                    Reserve.spin_until_clear_timeout ctx backoff
                      status.(si).(i) ~timeout:reserve_timeout
                  then element_op tries si
                  else begin
                    (* Holder presumed stalled: re-search elsewhere. *)
                    incr reserve_timeouts;
                    element_op (tries + 1) ((si + 1) mod config.s)
                  end
              end
            end
          end
        in
        let server_call () =
          let max_attempts =
            match mechanism with
            | No_timeout | Timeout -> 0 (* retry forever *)
            | Bounded_retry -> config.max_attempts
          in
          match
            Rpc.call_until_resolved ~max_attempts rpc ctx ~target:server
              server_service
          with
          | Rpc.Ok _ -> incr rpc_ok
          | Rpc.Gave_up | Rpc.Dead_target ->
            (* Degraded: do the op's worth of work locally and move on. *)
            Ctx.work ctx 60
          | Rpc.Absent | Rpc.Would_deadlock -> ()
        in
        let rec loop () =
          if Machine.now machine < t_end then begin
            incr iter;
            ignore (element_op 0 (Rng.int (Ctx.rng ctx) config.s) : bool);
            if config.rpc_every > 0 && !iter mod config.rpc_every = 0 then
              server_call ();
            if think > 0 then
              Ctx.work ctx ((think / 2) + Rng.int (Ctx.rng ctx) (max 1 think));
            loop ()
          end
        in
        loop ())
  done;
  (* The hog: keeps the server's status word reserved for long windows, so
     worker RPCs fail in streaks. All its accesses run as services on the
     server processor, serialised with the workers'. *)
  Process.spawn eng (fun () ->
      let ctx = ctxs.(hog) in
      let hold = Config.cycles_of_us cfg config.hog_hold_us in
      let idle = Config.cycles_of_us cfg config.hog_idle_us in
      let rec loop () =
        if Machine.now machine < t_end then begin
          ignore (Rpc.call rpc ctx ~target:server hog_reserve_service);
          Ctx.interruptible_pause ctx hold;
          ignore (Rpc.call rpc ctx ~target:server hog_clear_service);
          Ctx.interruptible_pause ctx idle;
          loop ()
        end
      in
      loop ());
  (* The server only serves interrupts; suspended while idle so the run
     terminates when workers and hog finish. *)
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(server));
  Engine.run eng;
  (match verify with
  | None -> ()
  | Some v -> Verify.finish v ~now:(Engine.now eng));
  let stalls, delays, drops, hotspots, stall_log =
    match plan with
    | None -> (0, 0, 0, 0, [])
    | Some f ->
      ( Fault.stalls_injected f,
        Fault.rpc_delays_injected f,
        Fault.rpc_drops_injected f,
        Fault.hotspots_injected f,
        Fault.stall_log f )
  in
  let label = mechanism_name mechanism in
  let recovery =
    Measure.of_stat cfg ~label
      (recovery_stat ~label stall_log (List.rev !entries_rev))
  in
  {
    mechanism;
    ops = !ops;
    deferred = !deferred;
    rpc_ok = !rpc_ok;
    rpc_calls = Rpc.calls rpc;
    rpc_resends = Rpc.resends rpc;
    rpc_gave_ups = Rpc.gave_ups rpc;
    lock_timeouts = Array.fold_left (fun a l -> a + Mcs.timeouts l) 0 locks;
    lock_gcs = Array.fold_left (fun a l -> a + Mcs.gc_count l) 0 locks;
    reserve_timeouts = !reserve_timeouts;
    stalls_injected = stalls;
    delays_injected = delays;
    drops_injected = drops;
    hotspots_injected = hotspots;
    recovery;
  }
