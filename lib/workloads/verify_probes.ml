(* Planted-violation probes for the lockdep checker.

   Each probe builds a tiny workload that commits exactly one class of
   locking error on purpose — an inverted acquisition order, a leaked
   reserve bit, a reserve wait inside an interrupt handler, a holder that
   stalls forever, a true ABBA deadlock — runs it under a checker, and
   reports whether the checker caught it. [Clean] runs a fault-free storm
   under the same checker and must report zero violations: the probes
   establish both directions, that the checker fires on every planted
   class and that it stays silent on correct code.

   The two watchdog probes ([Stalled_holder], [Deadlock]) would spin to
   the event budget without the checker; with it they terminate with a
   structured {!Verify.Violation} carrying a per-processor dump — the
   property the watchdog exists for. *)

open Eventsim
open Hector
open Locks

type probe =
  | Abba
  | Leak
  | Interrupt_spin
  | Stalled_holder
  | Deadlock
  | Aborted_waiter
  | Dead_owner
  | Clean

let probe_name = function
  | Abba -> "abba-order"
  | Leak -> "reserve-leak"
  | Interrupt_spin -> "interrupt-spin"
  | Stalled_holder -> "stalled-holder"
  | Deadlock -> "deadlock"
  | Aborted_waiter -> "aborted-waiter"
  | Dead_owner -> "dead-owner"
  | Clean -> "clean"

let all =
  [
    Abba;
    Leak;
    Interrupt_spin;
    Stalled_holder;
    Deadlock;
    Aborted_waiter;
    Dead_owner;
    Clean;
  ]

type result = {
  probe : probe;
  expected : Verify.kind option; (* [None]: no violation expected *)
  violations : int; (* all violations recorded *)
  hits : int; (* violations of the expected kind *)
  aborted : bool; (* run terminated by the watchdog raising *)
  ok : bool; (* planted class caught, or clean run silent *)
  first : string; (* first violation, for display *)
}

let expected_kind = function
  | Abba -> Some Verify.Order_cycle
  | Leak -> Some Verify.Reserve_leak
  | Interrupt_spin -> Some Verify.Interrupt_wait
  | Stalled_holder -> Some Verify.Stall
  | Deadlock -> Some Verify.Deadlock_cycle
  | Aborted_waiter -> None
  | Dead_owner -> None
  | Clean -> None

let setup () =
  let cfg = Config.hector in
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let rng = Rng.create 7 in
  let ctxs =
    Array.init (Config.n_procs cfg) (fun proc ->
        Ctx.create machine ~proc (Rng.split rng))
  in
  let v = Verify.create ~n_procs:(Config.n_procs cfg) () in
  Machine.set_verify machine (Some v);
  (eng, machine, ctxs, v)

(* Both orders are exercised, but staggered so they never overlap: the
   inversion is only *possible*, never strikes. The order graph must
   report it anyway — that is the point of checking orderings rather than
   waiting for the unlucky interleaving. *)
let run_abba () =
  let eng, machine, ctxs, v = setup () in
  let a = Mcs.create ~home:0 ~vclass:"probe.A" machine in
  let b = Mcs.create ~home:1 ~vclass:"probe.B" machine in
  Process.spawn eng (fun () ->
      let ctx = ctxs.(0) in
      Mcs.acquire a ctx;
      Mcs.acquire b ctx;
      Ctx.work ctx 200;
      Mcs.release b ctx;
      Mcs.release a ctx);
  Process.spawn_at eng ~at:50_000 (fun () ->
      let ctx = ctxs.(1) in
      Mcs.acquire b ctx;
      Mcs.acquire a ctx;
      Ctx.work ctx 200;
      Mcs.release a ctx;
      Mcs.release b ctx);
  Engine.run eng;
  Verify.finish v ~now:(Engine.now eng);
  (v, false)

let run_leak () =
  let eng, machine, ctxs, v = setup () in
  let word = Machine.alloc machine ~label:"probe.leak" ~home:0 0 in
  Process.spawn eng (fun () ->
      let ctx = ctxs.(0) in
      let got = Reserve.try_reserve ~cls:(Verify.lock_class "probe.leak") ctx word in
      assert got;
      Ctx.work ctx 500
      (* ... and the clear is forgotten. *));
  Engine.run eng;
  Verify.finish v ~now:(Engine.now eng);
  (v, false)

let run_interrupt_spin () =
  let eng, machine, ctxs, v = setup () in
  let word = Machine.alloc machine ~label:"probe.irq" ~home:0 0 in
  let cls = Verify.lock_class "probe.irq" in
  Process.spawn eng (fun () ->
      let ctx = ctxs.(0) in
      let got = Reserve.try_reserve ~cls ctx word in
      assert got;
      (* An interrupt handler must fail with Would_deadlock instead of
         waiting (Section 2.3); this one spins. The owner clears shortly
         after, so the run still terminates — the violation is the wait
         itself, not a hang. *)
      Ctx.post_ipi ctxs.(1) (fun tctx ->
          let bo = Backoff.create ~max_cycles:100 () in
          Reserve.spin_until_clear ~cls tctx bo word);
      Ctx.interruptible_pause ctx 2_000;
      Reserve.clear ctx word);
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(1));
  Engine.run eng;
  Verify.finish v ~now:(Engine.now eng);
  (v, false)

let run_stalled_holder () =
  let eng, machine, ctxs, v = setup () in
  let word = Machine.alloc machine ~label:"probe.stall" ~home:0 0 in
  let cls = Verify.lock_class "probe.stall" in
  Process.spawn eng (fun () ->
      let ctx = ctxs.(0) in
      let got = Reserve.try_reserve ~cls ctx word in
      assert got
      (* The holder's process ends here — a crashed or preempted holder.
         Nothing will ever clear the bit. *));
  Process.spawn_at eng ~at:1_000 (fun () ->
      let ctx = ctxs.(1) in
      let bo = Backoff.create ~max_cycles:200 () in
      (* Unbounded spin: without the watchdog this never returns. *)
      Reserve.spin_until_clear ~cls ctx bo word);
  Verify.watchdog ~period:5_000 ~stall_limit:50_000 v eng;
  let aborted =
    match Engine.run eng with
    | () -> false
    | exception Verify.Violation _ -> true
  in
  (v, aborted)

let run_deadlock () =
  let eng, machine, ctxs, v = setup () in
  let a = Mcs.create ~home:0 ~vclass:"probe.DA" machine in
  let b = Mcs.create ~home:1 ~vclass:"probe.DB" machine in
  let grab first second ctx =
    Mcs.acquire first ctx;
    Ctx.interruptible_pause ctx 1_000;
    (* By now the other processor holds [second]: a true ABBA deadlock. *)
    Mcs.acquire second ctx;
    Mcs.release second ctx;
    Mcs.release first ctx
  in
  Process.spawn eng (fun () -> grab a b ctxs.(0));
  Process.spawn eng (fun () -> grab b a ctxs.(1));
  Verify.watchdog ~period:5_000 v eng;
  let aborted =
    match Engine.run eng with
    | () -> false
    | exception Verify.Violation _ -> true
  in
  (v, aborted)

(* The negative twin of [Deadlock]: the same ABBA shape, but the inner
   acquisitions are timed — each waiter's deadline expires, it abandons,
   retreats (releasing its outer lock) and retries. The run self-resolves,
   so the checker must report NOTHING: timed waits record no order edges
   (an abortable waiter can never be the permanently-waiting side of a
   deadlock), the cycle detector skips timed frames, and the watchdog must
   not count a bounded, expiring wait as a stall. A checker without those
   rules reports a phantom Order_cycle or Deadlock_cycle here. *)
let run_aborted_waiter () =
  let eng, machine, ctxs, v = setup () in
  let a = Mcs.create ~home:0 ~vclass:"probe.TA" machine in
  let b = Mcs.create ~home:1 ~vclass:"probe.TB" machine in
  let grab first second ~backoff ctx =
    Mcs.acquire first ctx;
    Ctx.interruptible_pause ctx 1_000;
    (* By now the other processor holds [second]: with untimed inner
       acquisitions this is the [Deadlock] probe. *)
    let rec attempt () =
      if not (Mcs.acquire_with_timeout second ctx ~timeout:20_000) then begin
        (* Deadline expired: retreat — release what we hold so the other
           side can finish — and retry after an (asymmetric) pause. *)
        Mcs.release first ctx;
        Ctx.interruptible_pause ctx backoff;
        Mcs.acquire first ctx;
        attempt ()
      end
    in
    attempt ();
    Ctx.work ctx 200;
    Mcs.release second ctx;
    Mcs.release first ctx
  in
  Process.spawn eng (fun () -> grab a b ~backoff:2_000 ctxs.(0));
  Process.spawn eng (fun () -> grab b a ~backoff:8_000 ctxs.(1));
  Verify.watchdog ~period:5_000 v eng;
  let aborted =
    match Engine.run eng with
    | () -> false
    | exception Verify.Violation _ -> true
  in
  ignore machine;
  (v, aborted)

(* The second negative probe, for the crash path: the holder fail-stops
   mid-critical-section and a survivor force-releases the corpse's hold
   exactly as [Lock.acquire_recoverable]'s detector does. The checker saw
   the crash ([Verify.proc_crashed]), so the foreign release must be
   legalised as a recovery transfer — [ok] demands zero violations AND a
   recorded recovery, so a checker that silently dropped the crash
   bookkeeping (reporting nothing but transferring nothing) still fails. *)
let run_dead_owner () =
  let eng, machine, ctxs, v = setup () in
  let l = Mcs.create ~home:0 ~vclass:"probe.dead" machine in
  Process.spawn eng (fun () ->
      let ctx = ctxs.(0) in
      Mcs.acquire l ctx;
      (* A hold far past every deadline below: the kill lands mid-way. *)
      Ctx.work ctx 1_000_000);
  Process.spawn_at eng ~at:500 (fun () ->
      let ctx = ctxs.(1) in
      Machine.kill_proc machine 0;
      (* The detector loop [Lock.acquire_recoverable] runs, inlined: timed
         slices, and on each expiry a recovery pass against the oracle. *)
      let rec go () =
        if not (Mcs.acquire_with_timeout l ctx ~timeout:2_000) then begin
          ignore (Mcs.recover l ctx);
          go ()
        end
      in
      go ();
      Ctx.work ctx 200;
      Mcs.release l ctx);
  Engine.run eng;
  Verify.finish v ~now:(Engine.now eng);
  (v, false)

(* A fault-free storm is real concurrent traffic over every checked
   mechanism — MCS (timed and plain), reserve bits, RPC; the checker must
   stay silent on it. *)
let run_clean () =
  let v = Verify.create ~n_procs:(Config.n_procs Config.hector) () in
  let config =
    { Fault_storm.default_config with window_us = 5_000.0; fault = None }
  in
  let (_ : Fault_storm.result) =
    Fault_storm.run ~config ~verify:v Fault_storm.Timeout
  in
  (v, false)

let run probe =
  let v, aborted =
    match probe with
    | Abba -> run_abba ()
    | Leak -> run_leak ()
    | Interrupt_spin -> run_interrupt_spin ()
    | Stalled_holder -> run_stalled_holder ()
    | Deadlock -> run_deadlock ()
    | Aborted_waiter -> run_aborted_waiter ()
    | Dead_owner -> run_dead_owner ()
    | Clean -> run_clean ()
  in
  let expected = expected_kind probe in
  let violations = Verify.violation_count v in
  let hits =
    match expected with None -> 0 | Some k -> Verify.count_kind v k
  in
  let ok =
    match expected with
    | None ->
      violations = 0
      && (probe <> Dead_owner || Verify.recoveries v > 0)
    | Some _ -> hits > 0
  in
  let first =
    match Verify.violations v with
    | [] -> ""
    | viol :: _ -> Format.asprintf "%a" Verify.pp_violation viol
  in
  { probe; expected; violations; hits; aborted; ok; first }

let run_all () = List.map run all
