(** Latency summaries in microseconds, including the tail statistics the
    paper quotes (the >2 ms starvation fraction of Section 4.1.2). *)

open Eventsim
open Hector

type summary = {
  label : string;
  n : int;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  p999_us : float;
      (** nearest-rank p99.9 — the ROADMAP SLO axis; equals [max_us] at
          small sample counts (n < 1000) by the nearest-rank convention *)
  min_us : float;
  max_us : float;
  frac_above_2ms : float;
}

val of_stat : Config.t -> label:string -> Stat.t -> summary

val pp : Format.formatter -> summary -> unit
