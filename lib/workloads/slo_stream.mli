(** Open-loop sustained-request stream over a sharded million-element
    {!Hkernel.Khash}, with SLO latency percentiles (the SLO experiment).

    Requests arrive with exponential inter-arrival gaps at a fixed offered
    rate, are dispatched to a uniformly random server processor, and queue
    FIFO behind it; latency is measured arrival-to-completion, so it
    includes queueing delay — the open-loop regime where p99/p99.9 tails
    blow up as the offered rate approaches the table's capacity, which a
    closed-loop workload can never show. Always runs under a {!Verify}
    checker (zero violations required) and an {!Obs} observer. *)

open Hector
open Locks

type config = {
  p : int;  (** server processors *)
  elements : int;  (** keys pre-inserted; requests target these *)
  nbins : int;
  shards : int;
  rate_per_ms : float;  (** total offered load, requests per virtual ms *)
  requests : int;  (** arrivals generated *)
  read_ratio : float;  (** fraction of requests that are lookups *)
  element_work_us : float;  (** update work under the element *)
  lock_algo : Lock.algo;
  seed : int;
}

val default_config : config

type result = {
  offered_per_ms : float;
  completed : int;  (** always [config.requests]: the stream drains *)
  read_summary : Measure.summary;  (** arrival-to-completion, reads *)
  update_summary : Measure.summary;  (** arrival-to-completion, updates *)
  makespan_us : float;
  achieved_per_ms : float;  (** completed / makespan *)
  peak_backlog : int;
      (** max requests queued (all servers) at any instant *)
  optimistic_hits : int;
  optimistic_fallbacks : int;
  atomics : int;
  lockdep_violations : int;  (** must be 0 *)
  obs_rows : Obs.row list;
}

val run : ?cfg:Config.t -> ?config:config -> unit -> result
