(* Per-processor execution context.

   All simulated kernel code runs under a [Ctx.t]: it charges instruction
   cycles, routes memory operations through the machine, and implements the
   interrupt model:

   - other processors post inter-processor interrupts (IPIs) into the inbox;
   - interrupts are taken at simulated operation boundaries (memory
     operations, [poll], [await], [idle]), one at a time, never nested;
   - Stodolsky-style soft masking: when the soft mask is set, a taken
     interrupt only enqueues its work on the per-processor deferred queue
     (cheap, local, cacheable accesses); the work runs when the mask is
     cleared. The paper uses this to let lock holders exclude RPC handlers
     without disabling hardware interrupts. *)

open Eventsim

type t = {
  machine : Machine.t;
  proc : int;
  rng : Rng.t;
  inbox : handler Queue.t;
  deferred : handler Queue.t;
  mutable soft_masked : bool;
  mutable in_interrupt : bool;
  mutable overlap_credit : int;
  mutable idle_wake : (unit -> unit) option;
  mutable irqs_taken : int;
  mutable irqs_deferred : int;
  mutable instr_cycles : int;
}

and handler = t -> unit

let create machine ~proc rng =
  if proc < 0 || proc >= Machine.n_procs machine then
    invalid_arg (Printf.sprintf "Ctx.create: bad processor id %d" proc);
  {
    machine;
    proc;
    rng;
    inbox = Queue.create ();
    deferred = Queue.create ();
    soft_masked = false;
    in_interrupt = false;
    overlap_credit = 0;
    idle_wake = None;
    irqs_taken = 0;
    irqs_deferred = 0;
    instr_cycles = 0;
  }

let machine t = t.machine
let proc t = t.proc
let rng t = t.rng
let engine t = Machine.engine t.machine
let config t = Machine.config t.machine
let now t = Machine.now t.machine

let irqs_taken t = t.irqs_taken
let irqs_deferred t = t.irqs_deferred
let soft_masked t = t.soft_masked
let in_interrupt t = t.in_interrupt
let pending_interrupts t = Queue.length t.inbox

(* Fail-stop enforcement: a dead processor's fiber parks — suspends with
   the resume continuation dropped on the floor — at the next operation
   boundary. Parking, not raising, is the point: an exception would unwind
   through [Fun.protect] cleanup (e.g. [Lock.with_lock]'s release) and
   politely hand back everything the processor holds, which a crash must
   not do. The check is one host-side array read; events already queued
   for the fiber (a pending memory-access completion, an IPI wake) fire
   into this check and die quietly. *)
let halt_if_dead t =
  if not (Machine.proc_alive t.machine t.proc) then
    Process.suspend (fun _resume -> ())

(* Pure compute. Instruction costs never touch the interconnect. *)
let work t cycles =
  halt_if_dead t;
  t.overlap_credit <- 0;
  t.instr_cycles <- t.instr_cycles + cycles;
  Machine.cpu_work t.machine cycles

(* Charge [reg] register-to-register and [br] branch instructions. Cycles
   immediately following a fetch&store overlap with its store phase, so up
   to [atomic_overlap] of them are free (Section 4.1.1 of the paper). *)
let instr t ?(reg = 0) ?(br = 0) () =
  halt_if_dead t;
  let cfg = config t in
  let cost = (reg * cfg.Config.reg_cost) + (br * cfg.Config.branch_cost) in
  let hidden = min t.overlap_credit cost in
  t.overlap_credit <- t.overlap_credit - hidden;
  let cost = cost - hidden in
  t.instr_cycles <- t.instr_cycles + cost;
  if cost > 0 then Machine.cpu_work t.machine cost

(* Take pending interrupts, one at a time. A taken interrupt always pays
   handler entry; when the soft mask is set it only records its work on the
   deferred queue (a handful of local, cacheable cycles) and returns. *)
let rec poll t =
  halt_if_dead t;
  if (not t.in_interrupt) && not (Queue.is_empty t.inbox) then begin
    let h = Queue.pop t.inbox in
    let cfg = config t in
    t.in_interrupt <- true;
    t.irqs_taken <- t.irqs_taken + 1;
    Machine.cpu_work t.machine cfg.Config.irq_entry;
    (* Check the per-processor soft-mask flag: local and cacheable, two
       cycles. *)
    Machine.cpu_work t.machine 2;
    if t.soft_masked then begin
      t.irqs_deferred <- t.irqs_deferred + 1;
      Queue.push h t.deferred;
      Machine.cpu_work t.machine 4 (* enqueue work record, local *)
    end
    else h t;
    Machine.cpu_work t.machine cfg.Config.irq_exit;
    t.in_interrupt <- false;
    poll t
  end

(* Memory operations: interrupts are taken at the boundary, then the access
   is charged. Any memory operation ends the swap-overlap window. *)

let read t cell =
  poll t;
  t.overlap_credit <- 0;
  Machine.read t.machine ~proc:t.proc cell

let write t cell v =
  poll t;
  t.overlap_credit <- 0;
  Machine.write t.machine ~proc:t.proc cell v

let fetch_and_store t cell v =
  poll t;
  let old = Machine.fetch_and_store t.machine ~proc:t.proc cell v in
  t.overlap_credit <- (config t).Config.atomic_overlap;
  old

let test_and_set t cell = fetch_and_store t cell 1

let compare_and_swap t cell ~expect ~set =
  poll t;
  let ok = Machine.compare_and_swap t.machine ~proc:t.proc cell ~expect ~set in
  t.overlap_credit <- (config t).Config.atomic_overlap;
  ok

(* Soft masking (Stodolsky et al.): the flag sits at the top of the lock
   hierarchy. Setting and clearing are local cached accesses. Clearing
   drains the deferred work queue, running each record as ordinary kernel
   code. *)

let set_soft_mask t =
  Machine.cpu_work t.machine 2;
  t.soft_masked <- true

let clear_soft_mask t =
  Machine.cpu_work t.machine 2;
  t.soft_masked <- false;
  (* Drain the deferred work. Each record runs in interrupt context so a
     fresh IPI cannot nest inside it and re-enter non-reentrant kernel state
     (e.g. the processor's lock queue node). *)
  while not (Queue.is_empty t.deferred) do
    let h = Queue.pop t.deferred in
    Machine.cpu_work t.machine 4 (* dequeue work record *);
    t.in_interrupt <- true;
    h t;
    t.in_interrupt <- false
  done;
  poll t

let with_soft_mask t f =
  set_soft_mask t;
  Fun.protect ~finally:(fun () -> clear_soft_mask t) f

(* IPI delivery: enqueue the handler and wake the target if it is idle.
   The transfer cost of the request message is charged by the sender (see
   Hkernel.Rpc); the dispatch cost is charged by the receiver in [poll]. *)
let post_ipi target h =
  Queue.push h target.inbox;
  match target.idle_wake with
  | None -> ()
  | Some wake ->
    target.idle_wake <- None;
    wake ()

(* An interruptible pause: the processor is merely waiting (backoff,
   polling delay), so interrupts keep being taken at a fine grain. Plain
   [work] models committed computation, which interrupts only at its
   boundary; a waiting processor must use this instead, or a peer's RPC
   sits in the inbox for the whole pause — long enough to re-synchronise
   retry loops into livelock. *)
let interruptible_pause ?(granule = 32) t cycles =
  let eng = engine t in
  let deadline = Machine.now t.machine + cycles in
  let rec loop () =
    poll t;
    let remaining = deadline - Machine.now t.machine in
    if remaining > 0 then begin
      Process.pause eng (min granule remaining);
      loop ()
    end
  in
  loop ()

(* Fault-injection point: code that wants to be subject to injected
   lock-holder stalls (e.g. a workload's critical section) calls this at
   the spot where a preemption would hurt. With no plan installed it is a
   single host-side branch — no draws, no simulated cycles — so paper
   workloads, which never call it anyway, are untouched. A drawn stall is
   an interruptible pause: the preempted holder's processor keeps serving
   interrupts (the preemptor runs with interrupts enabled). *)
let fault_point t ~site =
  match Machine.fault_plan t.machine with
  | None -> ()
  | Some plan ->
    (* The crash question comes first (and costs no draw when
       [crash_rate = 0.0], keeping crash-free plans bit-identical).
       Workloads place fault points inside their critical sections, so a
       positive rate kills lock holders mid-section — the case recovery
       exists for. The kill parks this very fiber on the spot. *)
    if Fault.draw_crash plan then begin
      Machine.kill_proc t.machine t.proc;
      halt_if_dead t
    end
    else begin
      match Fault.draw_stall plan ~site ~now:(Machine.now t.machine) with
      | None -> ()
      | Some cycles -> interruptible_pause t cycles
    end

(* Spin on a reply while continuing to take interrupts: this is how a
   processor waits for an RPC to complete in an exception-based kernel — the
   processor is busy, but interrupts (and hence incoming RPCs) still get
   through, which matters for the cross-cluster deadlock scenarios. *)
let await ?(poll_interval = 16) t ivar =
  (* Waiting for a remote reply while soft-masked could deadlock: the reply
     may depend on a service this processor has deferred. The kernel never
     holds a coarse lock across an RPC, so this must not happen. *)
  assert (not t.soft_masked);
  let eng = engine t in
  let rec loop () =
    poll t;
    match Ivar.peek ivar with
    | Some v -> v
    | None ->
      Process.pause eng poll_interval;
      loop ()
  in
  loop ()

(* [await] with a deadline: gives up once [timeout] cycles pass without the
   ivar filling. This is what lets an RPC caller detect a lost message and
   resend instead of spinning forever. *)
let await_timeout ?(poll_interval = 16) t ~timeout ivar =
  assert (not t.soft_masked);
  let eng = engine t in
  let deadline = Machine.now t.machine + timeout in
  let rec loop () =
    poll t;
    match Ivar.peek ivar with
    | Some v -> Some v
    | None ->
      if Machine.now t.machine >= deadline then None
      else begin
        Process.pause eng poll_interval;
        loop ()
      end
  in
  loop ()

(* Idle loop for processors with no workload of their own: sleep until an
   IPI arrives, serve it, repeat. The suspension keeps the event heap empty
   while idle, so simulations terminate when all real work is done. *)
let idle_loop t =
  let rec loop () =
    if Queue.is_empty t.inbox then
      Process.suspend (fun resume -> t.idle_wake <- Some resume);
    poll t;
    loop ()
  in
  loop ()
