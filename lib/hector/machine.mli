(** The simulated NUMA machine: topology, contended resources, timed memory
    operations.

    All operations that touch memory must be called from within a simulated
    process ({!Eventsim.Process.spawn}); they suspend the calling process for
    the access duration, which includes FIFO queueing at the station buses,
    the ring and the target memory module. *)

open Eventsim

type t

val create : Engine.t -> Config.t -> t

val engine : t -> Engine.t
val config : t -> Config.t

(** Current virtual time in cycles. *)
val now : t -> int

val n_procs : t -> int

(** Total read / write / atomic operations performed, for experiment
    accounting. *)
val reads : t -> int

val writes : t -> int
val atomics : t -> int

(** Cache hits, on a coherent configuration. *)
val cache_hits : t -> int

(** Install (or clear) a fault plan: while installed, accesses to a PMM the
    plan declares hot pay a multiplied latency, context fault points may
    stall or crash the visitor, and the plan's [crash_at] schedule is armed
    as engine events (disarmed again if the plan is cleared or replaced
    before they fire). [None] (the default) makes every timing identical to
    a build without injection. *)
val set_fault_plan : t -> Fault.t option -> unit

val fault_plan : t -> Fault.t option

(** {2 Fail-stop crashes}

    A dead processor never executes another instruction: {!Ctx} parks its
    fiber — without running any cleanup, so everything it held stays held —
    at its next operation boundary. Aliveness is host-side state, free to
    consult from simulated code (the fail-stop model's "crashes are
    detectable" half). *)

(** Kill a processor at the current time. Idempotent on the dead. The
    fiber is parked at its next boundary rather than torn down, so locks
    and reservations it holds leak — recovery is the lock layer's job.
    [restart_after] overrides the plan's fail-restart delay ([0] = never
    revive). Notifies the installed fault plan, checker, and observer. *)
val kill_proc : ?restart_after:int -> t -> int -> unit

(** Liveness oracle: false once [kill_proc] ran (until a revival). *)
val proc_alive : t -> int -> bool

(** When the processor was killed; -1 while alive. *)
val killed_at : t -> int -> int

(** Revive a dead processor immediately (idempotent on the living) and
    invoke the restart handler, if any. The old fiber stays parked — the
    handler is the place to spawn fresh work on the processor. *)
val revive : t -> int -> unit

(** Called with the processor id on every revival. *)
val set_restart_handler : t -> (int -> unit) -> unit

val crashes : t -> int
val restarts : t -> int

(** Install (or clear) a lockdep checker: while installed, the locking
    layers report acquisitions, releases and reserve-bit transitions to it.
    Hooks are host-side bookkeeping only — they charge no simulated cycles
    — so simulated timing is identical with and without a checker. *)
val set_verify : t -> Verify.t option -> unit

val verify : t -> Verify.t option

(** Install (or clear) a contention observer ({!Obs}): while installed,
    the same hook sites that feed the checker also feed per-lock-class
    profiles and the event trace. Host-side bookkeeping only — simulated
    timing is identical with and without an observer. *)
val set_obs : t -> Obs.t option -> unit

val obs : t -> Obs.t option

val mem_resource : t -> int -> Resource.t
val bus_resource : t -> int -> Resource.t
val ring_resource : t -> Resource.t

(** Allocate a cell homed on the given PMM. *)
val alloc : t -> ?label:string -> home:int -> int -> Cell.t

val us_of_cycles : t -> int -> float
val cycles_of_us : t -> float -> int

(** Uncontended latency of one access from [proc] to a cell homed on
    [home]. *)
val base_latency : t -> proc:int -> home:int -> int

(** Timed read: suspends for the access duration, returns the value as seen
    when the memory module serviced the access. *)
val read : t -> proc:int -> Cell.t -> int

val write : t -> proc:int -> Cell.t -> int -> unit

(** Atomic swap — HECTOR's only atomic primitive; costs two memory
    accesses. Returns the previous value. *)
val fetch_and_store : t -> proc:int -> Cell.t -> int -> int

(** [fetch_and_store] of 1; returns the previous value (0 means the caller
    got the "lock"). *)
val test_and_set : t -> proc:int -> Cell.t -> int

(** Only available when the configuration has [has_cas = true]; used by the
    Section 5.2 ablation. @raise Failure otherwise. *)
val compare_and_swap : t -> proc:int -> Cell.t -> expect:int -> set:int -> bool

(** Pure compute: suspend for [cycles] without touching any resource. *)
val cpu_work : t -> int -> unit

(** Zero operation counters and free all resources (between experiments). *)
val reset_counters : t -> unit
