(** Per-processor execution context: instruction charging, timed memory
    operations, and the interrupt model (IPIs, Stodolsky soft masking,
    deferred work queue).

    All functions that advance time must run inside a simulated process. *)

open Eventsim

type t

(** An interrupt handler; runs on the target processor's context. *)
and handler = t -> unit

val create : Machine.t -> proc:int -> Rng.t -> t

val machine : t -> Machine.t
val proc : t -> int
val rng : t -> Rng.t
val engine : t -> Engine.t
val config : t -> Config.t
val now : t -> int

val irqs_taken : t -> int
val irqs_deferred : t -> int
val soft_masked : t -> bool

(** True while this context is running an interrupt handler (an RPC service
    or deferred-work record drained by [poll]). Used by the verification
    layer to flag blocking waits from interrupt context. *)
val in_interrupt : t -> bool
val pending_interrupts : t -> int

(** Pure compute for [cycles]. *)
val work : t -> int -> unit

(** Charge [reg] register-to-register and [br] branch instructions; cycles
    following a fetch&store overlap with its store phase and are free up to
    the configured overlap credit. *)
val instr : t -> ?reg:int -> ?br:int -> unit -> unit

(** Take all pending interrupts (entry cost, soft-mask check, handler or
    deferral, exit cost). Called implicitly by every memory operation. *)
val poll : t -> unit

val read : t -> Cell.t -> int
val write : t -> Cell.t -> int -> unit

(** Atomic swap; returns the previous value and opens the overlap window. *)
val fetch_and_store : t -> Cell.t -> int -> int

val test_and_set : t -> Cell.t -> int
val compare_and_swap : t -> Cell.t -> expect:int -> set:int -> bool

(** Set the per-processor soft-mask flag (top of the lock hierarchy). *)
val set_soft_mask : t -> unit

(** Clear the flag and run all deferred work records. *)
val clear_soft_mask : t -> unit

val with_soft_mask : t -> (unit -> 'a) -> 'a

(** Deliver an interrupt to (another) processor, waking it if idle. *)
val post_ipi : t -> handler -> unit

(** Pause while continuing to take interrupts every [granule] cycles: for
    backoffs and polling delays, where the processor is waiting rather than
    computing. *)
val interruptible_pause : ?granule:int -> t -> int -> unit

(** Fault-injection point: consult the machine's installed fault plan
    ({!Machine.set_fault_plan}) and, if a crash is drawn, fail-stop this
    processor on the spot (the fiber parks; see {!halt_if_dead}); else if
    a stall is drawn for [site], spend it as an interruptible pause (a
    preempted holder's processor still serves interrupts). Free when no
    plan is installed; makes no crash draw when [crash_rate = 0.0]. *)
val fault_point : t -> site:int -> unit

(** Park this fiber forever if its processor is dead
    ({!Machine.proc_alive}). Called at every operation boundary ([poll],
    [work], [instr], hence every memory operation and wait loop) — a
    crashed processor stops at its next instruction without running any
    cleanup. One host-side read when alive. *)
val halt_if_dead : t -> unit

(** Busy-wait for an ivar while continuing to take interrupts — how a
    processor waits for an RPC reply in an exception-based kernel. *)
val await : ?poll_interval:int -> t -> 'a Ivar.t -> 'a

(** {!await} with a deadline: [None] once [timeout] cycles pass without a
    value — the caller can resend a lost request. *)
val await_timeout : ?poll_interval:int -> t -> timeout:int -> 'a Ivar.t -> 'a option

(** Idle service loop for processors without their own workload: sleeps
    until an IPI arrives, serves it, repeats. Never returns. *)
val idle_loop : t -> unit
