(* A word of simulated shared memory.

   Cells carry their home PMM so the machine can charge the right latency
   and queue on the right resources. The stored value is a plain int; lock
   words store qnode ids (with 0 as nil), reserve words store bit masks. *)

type t = {
  mutable value : int;
  home : int; (* PMM id *)
  id : int; (* allocation order, for debugging *)
  label : string;
  (* Cache-coherence bookkeeping, used only when the machine configuration
     enables hardware coherence (the Section 5.2 discussion): which
     processors hold a valid cached copy, and which (if any) holds the line
     exclusive. *)
  mutable cached_by : int; (* processor bitmask *)
  mutable excl : int; (* processor id or -1 *)
}

(* Atomic so that independent experiment cells built on parallel domains
   (Hurricane.Par) allocate distinct debug ids without a data race. Ids are
   never exported — they only label diagnostics — so the cross-domain
   numbering order being nondeterministic is harmless. *)
let counter = Atomic.make 0

let make ?(label = "") ~home value =
  let id = 1 + Atomic.fetch_and_add counter 1 in
  { value; home; id; label; cached_by = 0; excl = -1 }

let home t = t.home
let id t = t.id
let label t = t.label

(* Raw, untimed access: only for initialisation and for assertions in
   tests. Simulated code must go through Machine/Ctx. *)
let peek t = t.value
let poke t v = t.value <- v

let pp ppf t =
  Format.fprintf ppf "cell#%d%s@pmm%d=%d" t.id
    (if t.label = "" then "" else "(" ^ t.label ^ ")")
    t.home t.value

(* Cache-state helpers (untimed; the machine charges the costs). *)
let cached_by t proc = t.cached_by land (1 lsl proc) <> 0
let exclusive_of t = t.excl

let cache_fill t proc = t.cached_by <- t.cached_by lor (1 lsl proc)

let cache_take_exclusive t proc =
  t.cached_by <- 1 lsl proc;
  t.excl <- proc

let cache_drop_exclusive t = t.excl <- -1

let cache_flush t =
  t.cached_by <- 0;
  t.excl <- -1
