(* The simulated machine: topology, resources, timed memory operations.

   Every access from processor [p] to a cell homed on PMM [m] pays a base
   uncontended latency (10/19/23 cycles) and occupies, in order, the source
   station bus, the ring and the destination station bus (for remote
   accesses) and finally the destination memory module. Occupancies are FIFO
   {!Eventsim.Resource}s, so concurrent accesses queue — this queueing is
   the source of all second-order contention effects in the experiments.

   Atomic operations (swap / test&set) make two memory accesses on HECTOR,
   doubling both the base latency and the memory-module occupancy, exactly
   the cost the paper attributes to its locking primitive. *)

open Eventsim

type t = {
  eng : Engine.t;
  cfg : Config.t;
  mem : Resource.t array; (* one per PMM *)
  bus : Resource.t array; (* one per station *)
  ring : Resource.t;
  mutable reads : int;
  mutable writes : int;
  mutable atomics : int;
  mutable cache_hits : int;
  mutable fault : Fault.t option; (* installed fault plan, for hot-spots *)
  mutable verify : Verify.t option; (* installed lockdep checker *)
  mutable obs : Obs.t option; (* installed contention observer *)
}

let create eng cfg =
  let cfg = Config.validate cfg in
  let n = Config.n_procs cfg in
  {
    eng;
    cfg;
    mem = Array.init n (fun i -> Resource.create (Printf.sprintf "mem%d" i));
    bus =
      Array.init cfg.Config.stations (fun i ->
          Resource.create (Printf.sprintf "bus%d" i));
    ring = Resource.create "ring";
    reads = 0;
    writes = 0;
    atomics = 0;
    cache_hits = 0;
    fault = None;
    verify = None;
    obs = None;
  }

let engine t = t.eng
let config t = t.cfg
let now t = Engine.now t.eng
let n_procs t = Config.n_procs t.cfg

let reads t = t.reads
let writes t = t.writes
let atomics t = t.atomics
let cache_hits t = t.cache_hits

let set_fault_plan t plan = t.fault <- plan
let fault_plan t = t.fault

let set_verify t v = t.verify <- v
let verify t = t.verify

let set_obs t o = t.obs <- o
let obs t = t.obs

let mem_resource t m = t.mem.(m)
let bus_resource t s = t.bus.(s)
let ring_resource t = t.ring

let alloc t ?label ~home v =
  if home < 0 || home >= n_procs t then
    invalid_arg (Printf.sprintf "Machine.alloc: bad home PMM %d" home);
  Cell.make ?label ~home v

let us_of_cycles t c = Config.us_of_cycles t.cfg c
let cycles_of_us t us = Config.cycles_of_us t.cfg us

(* Base latency of a single memory access, before contention. *)
let base_latency t ~proc ~home =
  let cfg = t.cfg in
  if proc = home then cfg.Config.local_latency
  else if Config.station_of_proc cfg proc = Config.station_of_pmm cfg home then
    cfg.Config.station_latency
  else cfg.Config.ring_latency

(* Walk the interconnect path and the memory module, reserving each FIFO
   resource in turn; return the completion time of the access. [atomic]
   read-modify-writes hold the module across both accesses plus a
   turnaround, so lock-word traffic is costlier to the module than the
   same number of plain accesses. *)
let access_finish_time t ~proc ~home ~accesses ~atomic =
  let cfg = t.cfg in
  let start = Engine.now t.eng in
  let sp = Config.station_of_proc cfg proc
  and sm = Config.station_of_pmm cfg home in
  (* Injected hot-spot: the destination PMM may be serving at a multiple of
     its normal latency. 1 when no plan is installed or the PMM is cool, so
     the factor costs nothing when injection is off. *)
  let hot =
    match t.fault with
    | None -> 1
    | Some plan -> Fault.hotspot_factor plan ~pmm:home ~now:start
  in
  (* A processor's accesses to its own PMM go through a dedicated local
     port: the processor is sequential, so it cannot contend with itself,
     and local spinning must stay harmless — that is the property of
     distributed locks the paper builds on. Local accesses therefore pay
     the base latency but reserve no shared resource. *)
  if proc = home then start + (cfg.Config.local_latency * accesses * hot)
  else begin
  (* An atomic makes [accesses] full memory accesses, each a separate
     transaction on the buses and ring, so every occupancy scales with
     [accesses]. *)
  let path = ref start in
  if sp <> sm then begin
    path :=
      Resource.reserve t.bus.(sp) ~now:!path
        ~service:(cfg.Config.bus_service * accesses);
    path :=
      Resource.reserve t.ring ~now:!path
        ~service:(cfg.Config.ring_service * accesses);
    path :=
      Resource.reserve t.bus.(sm) ~now:!path
        ~service:(cfg.Config.bus_service * accesses)
  end
  else if proc <> home then
    path :=
      Resource.reserve t.bus.(sp) ~now:!path
        ~service:(cfg.Config.bus_service * accesses);
  let service =
    ((cfg.Config.mem_service * accesses)
    + (if atomic then cfg.Config.atomic_module_overhead else 0))
    * hot
  in
  path := Resource.reserve t.mem.(home) ~now:!path ~service;
  let base = base_latency t ~proc ~home * accesses * hot in
  max !path (start + base)
  end

(* Perform one timed access and suspend until it completes. The value
   operation [op] runs at completion time, which orders conflicting
   operations by their service order at the memory module. *)
let timed_access t ~proc cell ~accesses ?(atomic = false) op =
  let finish =
    access_finish_time t ~proc ~home:(Cell.home cell) ~accesses ~atomic
  in
  Process.wait_until t.eng finish;
  op ()

(* Hardware cache coherence (Section 5.2 discussion, NUMAchine preset):
   a read hits in the local cache if the processor holds a valid copy; a
   write or atomic is cheap only if the processor already holds the line
   exclusively, and otherwise pays the full memory access and invalidates
   every other copy. Invalidation traffic itself is abstracted (zero
   occupancy); the first-order effect — misses and exclusivity transfers
   costing tens of cached operations — is what the model needs. *)

let cache_hit t = Process.pause t.eng t.cfg.Config.cache_hit

let read t ~proc cell =
  t.reads <- t.reads + 1;
  if t.cfg.Config.cache_coherent && Cell.cached_by cell proc then begin
    t.cache_hits <- t.cache_hits + 1;
    cache_hit t;
    Cell.peek cell
  end
  else
    timed_access t ~proc cell ~accesses:1 (fun () ->
        if t.cfg.Config.cache_coherent then begin
          (* A read copy downgrades any exclusive holder. *)
          Cell.cache_drop_exclusive cell;
          Cell.cache_fill cell proc
        end;
        Cell.peek cell)

let write t ~proc cell v =
  t.writes <- t.writes + 1;
  if t.cfg.Config.cache_coherent && Cell.exclusive_of cell = proc then begin
    t.cache_hits <- t.cache_hits + 1;
    cache_hit t;
    Cell.poke cell v
  end
  else
    timed_access t ~proc cell ~accesses:1 (fun () ->
        if t.cfg.Config.cache_coherent then Cell.cache_take_exclusive cell proc;
        Cell.poke cell v)

let fetch_and_store t ~proc cell v =
  t.atomics <- t.atomics + 1;
  if t.cfg.Config.cache_coherent && Cell.exclusive_of cell = proc then begin
    (* Cache-based atomic on an exclusively held line: close to a regular
       access. *)
    t.cache_hits <- t.cache_hits + 1;
    cache_hit t;
    let old = Cell.peek cell in
    Cell.poke cell v;
    old
  end
  else
    timed_access t ~proc cell ~accesses:t.cfg.Config.atomic_mem_accesses
      ~atomic:true
      (fun () ->
        if t.cfg.Config.cache_coherent then Cell.cache_take_exclusive cell proc;
        let old = Cell.peek cell in
        Cell.poke cell v;
        old)

let test_and_set t ~proc cell = fetch_and_store t ~proc cell 1

let compare_and_swap t ~proc cell ~expect ~set =
  if not t.cfg.Config.has_cas then
    failwith "Machine.compare_and_swap: machine has no compare-and-swap";
  t.atomics <- t.atomics + 1;
  if t.cfg.Config.cache_coherent && Cell.exclusive_of cell = proc then begin
    t.cache_hits <- t.cache_hits + 1;
    cache_hit t;
    if Cell.peek cell = expect then begin
      Cell.poke cell set;
      true
    end
    else false
  end
  else
    timed_access t ~proc cell ~accesses:t.cfg.Config.atomic_mem_accesses
      ~atomic:true
      (fun () ->
        if t.cfg.Config.cache_coherent then Cell.cache_take_exclusive cell proc;
        if Cell.peek cell = expect then begin
          Cell.poke cell set;
          true
        end
        else false)

let cpu_work t cycles = Process.pause t.eng cycles

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0;
  t.atomics <- 0;
  t.cache_hits <- 0;
  Array.iter Resource.reset t.mem;
  Array.iter Resource.reset t.bus;
  Resource.reset t.ring
