(* The simulated machine: topology, resources, timed memory operations.

   Every access from processor [p] to a cell homed on PMM [m] pays a base
   uncontended latency (10/19/23 cycles) and occupies, in order, the source
   station bus, the ring and the destination station bus (for remote
   accesses) and finally the destination memory module. Occupancies are FIFO
   {!Eventsim.Resource}s, so concurrent accesses queue — this queueing is
   the source of all second-order contention effects in the experiments.

   Atomic operations (swap / test&set) make two memory accesses on HECTOR,
   doubling both the base latency and the memory-module occupancy, exactly
   the cost the paper attributes to its locking primitive. *)

open Eventsim

type t = {
  eng : Engine.t;
  cfg : Config.t;
  mem : Resource.t array; (* one per PMM *)
  bus : Resource.t array; (* one per station *)
  ring : Resource.t;
  mutable reads : int;
  mutable writes : int;
  mutable atomics : int;
  mutable cache_hits : int;
  mutable fault : Fault.t option; (* installed fault plan, for hot-spots *)
  mutable verify : Verify.t option; (* installed lockdep checker *)
  mutable obs : Obs.t option; (* installed contention observer *)
  (* Fail-stop state. A dead processor never runs another instruction: Ctx
     parks its fiber at the next operation boundary, and peers consult
     [alive] (a host-side read, no simulated cost) to fail fast instead of
     timing out against a corpse. *)
  alive : bool array;
  killed_time : int array; (* when the processor died; -1 while alive *)
  mutable crashes : int;
  mutable restarts : int;
  mutable on_restart : (int -> unit) option;
      (* workload callback to respawn work on a revived processor (the
         fiber that died stays parked forever) *)
}

let create eng cfg =
  let cfg = Config.validate cfg in
  let n = Config.n_procs cfg in
  {
    eng;
    cfg;
    mem = Array.init n (fun i -> Resource.create (Printf.sprintf "mem%d" i));
    bus =
      Array.init cfg.Config.stations (fun i ->
          Resource.create (Printf.sprintf "bus%d" i));
    ring = Resource.create "ring";
    reads = 0;
    writes = 0;
    atomics = 0;
    cache_hits = 0;
    fault = None;
    verify = None;
    obs = None;
    alive = Array.make n true;
    killed_time = Array.make n (-1);
    crashes = 0;
    restarts = 0;
    on_restart = None;
  }

let engine t = t.eng
let config t = t.cfg
let now t = Engine.now t.eng
let n_procs t = Config.n_procs t.cfg

let reads t = t.reads
let writes t = t.writes
let atomics t = t.atomics
let cache_hits t = t.cache_hits

(* -- fail-stop crashes ---------------------------------------------------- *)

let proc_alive t proc = t.alive.(proc)
let killed_at t proc = t.killed_time.(proc)
let crashes t = t.crashes
let restarts t = t.restarts
let set_restart_handler t f = t.on_restart <- Some f

let revive t proc =
  if not t.alive.(proc) then begin
    t.alive.(proc) <- true;
    t.killed_time.(proc) <- -1;
    t.restarts <- t.restarts + 1;
    (match t.fault with
    | Some plan -> Fault.record_restart plan ~proc ~now:(now t)
    | None -> ());
    (match t.verify with
    | Some v -> Verify.proc_revived v ~proc
    | None -> ());
    match t.on_restart with Some f -> f proc | None -> ()
  end

(* Kill processor [proc] now. Its fiber is not torn down here — raising
   into it would run cleanup handlers ([Fun.protect] in [with_lock]) and
   politely release everything the processor holds, which is exactly what
   a fail-stop crash must not do. Instead Ctx parks the fiber, resume
   dropped, at its next operation boundary; any events already queued for
   it fire harmlessly into that check. [restart_after] (default: the
   plan's) schedules a revival, making the crash fail-restart. *)
let kill_proc ?restart_after t proc =
  if t.alive.(proc) then begin
    t.alive.(proc) <- false;
    t.killed_time.(proc) <- now t;
    t.crashes <- t.crashes + 1;
    let restart_after =
      match restart_after with
      | Some d -> d
      | None -> ( match t.fault with Some p -> Fault.restart_after p | None -> 0)
    in
    (match t.fault with
    | Some plan -> Fault.record_crash plan ~proc ~now:(now t)
    | None -> ());
    (match t.verify with
    | Some v -> Verify.proc_crashed v ~proc ~now:(now t)
    | None -> ());
    (match t.obs with
    | Some o -> Obs.proc_crashed o ~proc ~now:(now t)
    | None -> ());
    if restart_after > 0 then
      Engine.schedule_after t.eng ~delay:restart_after (fun () ->
          revive t proc)
  end

let set_fault_plan t plan =
  t.fault <- plan;
  (* Arm the plan's scheduled kills as engine events. Each event checks
     that this very plan is still installed when it fires, so clearing or
     replacing the plan disarms a schedule that cannot be unqueued. *)
  match plan with
  | None -> ()
  | Some p ->
      List.iter
        (fun (at, proc) ->
          if proc < n_procs t then
            Engine.schedule t.eng
              ~at:(max at (Engine.now t.eng))
              (fun () ->
                match t.fault with
                | Some q when q == p -> kill_proc t proc
                | _ -> ()))
        (Fault.crash_schedule p)

let fault_plan t = t.fault

let set_verify t v = t.verify <- v
let verify t = t.verify

let set_obs t o = t.obs <- o
let obs t = t.obs

let mem_resource t m = t.mem.(m)
let bus_resource t s = t.bus.(s)
let ring_resource t = t.ring

let alloc t ?label ~home v =
  if home < 0 || home >= n_procs t then
    invalid_arg (Printf.sprintf "Machine.alloc: bad home PMM %d" home);
  Cell.make ?label ~home v

let us_of_cycles t c = Config.us_of_cycles t.cfg c
let cycles_of_us t us = Config.cycles_of_us t.cfg us

(* Base latency of a single memory access, before contention. *)
let base_latency t ~proc ~home =
  let cfg = t.cfg in
  if proc = home then cfg.Config.local_latency
  else if Config.station_of_proc cfg proc = Config.station_of_pmm cfg home then
    cfg.Config.station_latency
  else cfg.Config.ring_latency

(* Walk the interconnect path and the memory module, reserving each FIFO
   resource in turn; return the completion time of the access. [atomic]
   read-modify-writes hold the module across both accesses plus a
   turnaround, so lock-word traffic is costlier to the module than the
   same number of plain accesses. *)
let access_finish_time t ~proc ~home ~accesses ~atomic =
  let cfg = t.cfg in
  let start = Engine.now t.eng in
  let sp = Config.station_of_proc cfg proc
  and sm = Config.station_of_pmm cfg home in
  (* Injected hot-spot: the destination PMM may be serving at a multiple of
     its normal latency. 1 when no plan is installed or the PMM is cool, so
     the factor costs nothing when injection is off. *)
  let hot =
    match t.fault with
    | None -> 1
    | Some plan -> Fault.hotspot_factor plan ~pmm:home ~now:start
  in
  (* A processor's accesses to its own PMM go through a dedicated local
     port: the processor is sequential, so it cannot contend with itself,
     and local spinning must stay harmless — that is the property of
     distributed locks the paper builds on. Local accesses therefore pay
     the base latency but reserve no shared resource. *)
  if proc = home then start + (cfg.Config.local_latency * accesses * hot)
  else begin
  (* An atomic makes [accesses] full memory accesses, each a separate
     transaction on the buses and ring, so every occupancy scales with
     [accesses]. *)
  let path = ref start in
  if sp <> sm then begin
    path :=
      Resource.reserve t.bus.(sp) ~now:!path
        ~service:(cfg.Config.bus_service * accesses);
    path :=
      Resource.reserve t.ring ~now:!path
        ~service:(cfg.Config.ring_service * accesses);
    path :=
      Resource.reserve t.bus.(sm) ~now:!path
        ~service:(cfg.Config.bus_service * accesses)
  end
  else if proc <> home then
    path :=
      Resource.reserve t.bus.(sp) ~now:!path
        ~service:(cfg.Config.bus_service * accesses);
  let service =
    ((cfg.Config.mem_service * accesses)
    + (if atomic then cfg.Config.atomic_module_overhead else 0))
    * hot
  in
  path := Resource.reserve t.mem.(home) ~now:!path ~service;
  let base = base_latency t ~proc ~home * accesses * hot in
  max !path (start + base)
  end

(* Perform one timed access and suspend until it completes. The value
   operation [op] runs at completion time, which orders conflicting
   operations by their service order at the memory module. *)
let timed_access t ~proc cell ~accesses ?(atomic = false) op =
  let finish =
    access_finish_time t ~proc ~home:(Cell.home cell) ~accesses ~atomic
  in
  Process.wait_until t.eng finish;
  op ()

(* Hardware cache coherence (Section 5.2 discussion, NUMAchine preset):
   a read hits in the local cache if the processor holds a valid copy; a
   write or atomic is cheap only if the processor already holds the line
   exclusively, and otherwise pays the full memory access and invalidates
   every other copy. Invalidation traffic itself is abstracted (zero
   occupancy); the first-order effect — misses and exclusivity transfers
   costing tens of cached operations — is what the model needs. *)

let cache_hit t = Process.pause t.eng t.cfg.Config.cache_hit

let read t ~proc cell =
  t.reads <- t.reads + 1;
  if t.cfg.Config.cache_coherent && Cell.cached_by cell proc then begin
    t.cache_hits <- t.cache_hits + 1;
    cache_hit t;
    Cell.peek cell
  end
  else
    timed_access t ~proc cell ~accesses:1 (fun () ->
        if t.cfg.Config.cache_coherent then begin
          (* A read copy downgrades any exclusive holder. *)
          Cell.cache_drop_exclusive cell;
          Cell.cache_fill cell proc
        end;
        Cell.peek cell)

let write t ~proc cell v =
  t.writes <- t.writes + 1;
  if t.cfg.Config.cache_coherent && Cell.exclusive_of cell = proc then begin
    t.cache_hits <- t.cache_hits + 1;
    cache_hit t;
    Cell.poke cell v
  end
  else
    timed_access t ~proc cell ~accesses:1 (fun () ->
        if t.cfg.Config.cache_coherent then Cell.cache_take_exclusive cell proc;
        Cell.poke cell v)

let fetch_and_store t ~proc cell v =
  t.atomics <- t.atomics + 1;
  if t.cfg.Config.cache_coherent && Cell.exclusive_of cell = proc then begin
    (* Cache-based atomic on an exclusively held line: close to a regular
       access. *)
    t.cache_hits <- t.cache_hits + 1;
    cache_hit t;
    let old = Cell.peek cell in
    Cell.poke cell v;
    old
  end
  else
    timed_access t ~proc cell ~accesses:t.cfg.Config.atomic_mem_accesses
      ~atomic:true
      (fun () ->
        if t.cfg.Config.cache_coherent then Cell.cache_take_exclusive cell proc;
        let old = Cell.peek cell in
        Cell.poke cell v;
        old)

let test_and_set t ~proc cell = fetch_and_store t ~proc cell 1

let compare_and_swap t ~proc cell ~expect ~set =
  if not t.cfg.Config.has_cas then
    failwith "Machine.compare_and_swap: machine has no compare-and-swap";
  t.atomics <- t.atomics + 1;
  if t.cfg.Config.cache_coherent && Cell.exclusive_of cell = proc then begin
    t.cache_hits <- t.cache_hits + 1;
    cache_hit t;
    if Cell.peek cell = expect then begin
      Cell.poke cell set;
      true
    end
    else false
  end
  else
    timed_access t ~proc cell ~accesses:t.cfg.Config.atomic_mem_accesses
      ~atomic:true
      (fun () ->
        if t.cfg.Config.cache_coherent then Cell.cache_take_exclusive cell proc;
        if Cell.peek cell = expect then begin
          Cell.poke cell set;
          true
        end
        else false)

let cpu_work t cycles = Process.pause t.eng cycles

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0;
  t.atomics <- 0;
  t.cache_hits <- 0;
  Array.iter Resource.reset t.mem;
  Array.iter Resource.reset t.bus;
  Resource.reset t.ring
