(** Deterministic, seeded fault injection.

    A fault plan decides — from its own {!Rng} stream, so replays are
    bit-for-bit — when to inject lock-holder stalls, RPC delays/losses,
    memory hot-spot slowdowns, and fail-stop processor crashes. The plan
    only makes decisions and counts them; the injection sites (context
    fault points, the machine's access path, the RPC layer) spend the
    simulated cycles and perform the kills. When no plan is installed
    those sites make no draws at all, so disabled injection is exactly
    free — and a plan with [crash_rate = 0.0] makes no crash draws, so
    pre-crash plans replay identically. *)

type config = {
  seed : int;
  stall_rate : float;  (** P(stall) per fault-point visit *)
  stall_every : int;
      (** scheduled mode (exclusive with [stall_rate]): [> 0] stalls the
          first fault-point visit on or after each multiple of this period
          — a fixed dosage independent of visit frequency, for comparing
          mechanisms under identical adversity *)
  stall_cycles : int;  (** length of an injected holder stall *)
  rpc_delay_rate : float;  (** P(delay) per RPC message (request or reply) *)
  rpc_delay_cycles : int;
  rpc_drop_rate : float;
      (** P(loss) per call — request or reply, at most once per call *)
  reply_timeout : int;
      (** callers resend the request after this many cycles without a
          reply; 0 disables resending (required > 0 when losses are on) *)
  hotspot_rate : float;  (** P(window opens) per access to a cool PMM *)
  hotspot_factor : int;  (** access-latency multiplier while hot *)
  hotspot_cycles : int;  (** hot-window length *)
  crash_rate : float;
      (** P(fail-stop) per fault-point visit — because workloads place
          fault points inside critical sections, a positive rate kills
          lock {e holders} mid-section *)
  crash_at : (int * int) list;
      (** scheduled kills: [(time, processor)], armed as engine events
          when the plan is installed *)
  restart_after : int;
      (** [> 0]: a crashed processor revives (fail-restart) after this
          many cycles; [0]: crashes are permanent (fail-stop) *)
}

(** All rates zero: a plan that never injects anything. *)
val disabled : config

(** @raise Invalid_argument on out-of-range rates, a factor below 1,
    losses enabled without a reply timeout, or negative crash-schedule
    entries / restart delay. *)
val validate : config -> config

type t

val create : config -> t
val config : t -> config
val reply_timeout : t -> int

(** {2 Draws — called by the injection sites} *)

(** Stall decision at a fault point; [Some cycles] means the caller must
    spend [cycles] stalled. Recorded in the log. *)
val draw_stall : t -> site:int -> now:int -> int option

(** Delay decision for one RPC message. *)
val draw_rpc_delay : t -> now:int -> int option

type drop = No_drop | Drop_request | Drop_reply

(** Loss decision for one RPC delivery attempt. *)
val draw_rpc_drop : t -> now:int -> drop

(** Latency multiplier for an access to [pmm] at [now]; 1 when cool. May
    open a new hot window. *)
val hotspot_factor : t -> pmm:int -> now:int -> int

(** Fail-stop decision at a fault point. Makes no draw when
    [crash_rate = 0.0]. Decides only — the machine performs the kill and
    reports it via {!record_crash}. *)
val draw_crash : t -> bool

(** Record a kill (rate-drawn, scheduled, or explicit) in the counters
    and the log. Called by the machine, not by clients. *)
val record_crash : t -> proc:int -> now:int -> unit

(** Record a fail-restart revival. Called by the machine. *)
val record_restart : t -> proc:int -> now:int -> unit

(** The configured [crash_at] schedule, for the machine to arm. *)
val crash_schedule : t -> (int * int) list

(** The configured restart delay (0 = fail-stop). *)
val restart_after : t -> int

(** {2 Accounting} *)

val stalls_injected : t -> int

(** Stalls injected at one fault-point site. *)
val stalls_at : t -> site:int -> int

val rpc_delays_injected : t -> int
val rpc_drops_injected : t -> int
val hotspots_injected : t -> int
val crashes_injected : t -> int
val restarts_injected : t -> int

(** Every injected fault except restarts (a restart is the undoing of a
    crash, not adversity of its own). *)
val total_injected : t -> int

(** {2 The injection log} *)

type kind = Stall | Rpc_delay | Rpc_drop | Hotspot | Crash | Restart

val kind_name : kind -> string

type event = {
  kind : kind;
  time : int;
  where : int;
      (** stall: fault-point site; hotspot: PMM; crash/restart: processor;
          RPC events: -1 *)
  cycles : int;  (** stall/delay/hotspot durations; 0 otherwise *)
}

(** The full chronological log of injected faults, every kind tagged. *)
val log : t -> event list

(** Chronological [(start, duration)] log of injected stalls, for
    recovery-latency analysis — the stalls-only view of {!log}. *)
val stall_log : t -> (int * int) list
