(** Deterministic, seeded fault injection.

    A fault plan decides — from its own {!Rng} stream, so replays are
    bit-for-bit — when to inject lock-holder stalls, RPC delays/losses, and
    memory hot-spot slowdowns. The plan only makes decisions and counts
    them; the injection sites (context fault points, the machine's access
    path, the RPC layer) spend the simulated cycles. When no plan is
    installed those sites make no draws at all, so disabled injection is
    exactly free. *)

type config = {
  seed : int;
  stall_rate : float;  (** P(stall) per fault-point visit *)
  stall_every : int;
      (** scheduled mode (exclusive with [stall_rate]): [> 0] stalls the
          first fault-point visit on or after each multiple of this period
          — a fixed dosage independent of visit frequency, for comparing
          mechanisms under identical adversity *)
  stall_cycles : int;  (** length of an injected holder stall *)
  rpc_delay_rate : float;  (** P(delay) per RPC message (request or reply) *)
  rpc_delay_cycles : int;
  rpc_drop_rate : float;
      (** P(loss) per call — request or reply, at most once per call *)
  reply_timeout : int;
      (** callers resend the request after this many cycles without a
          reply; 0 disables resending (required > 0 when losses are on) *)
  hotspot_rate : float;  (** P(window opens) per access to a cool PMM *)
  hotspot_factor : int;  (** access-latency multiplier while hot *)
  hotspot_cycles : int;  (** hot-window length *)
}

(** All rates zero: a plan that never injects anything. *)
val disabled : config

(** @raise Invalid_argument on out-of-range rates, a factor below 1, or
    losses enabled without a reply timeout. *)
val validate : config -> config

type t

val create : config -> t
val config : t -> config
val reply_timeout : t -> int

(** {2 Draws — called by the injection sites} *)

(** Stall decision at a fault point; [Some cycles] means the caller must
    spend [cycles] stalled. Recorded in the stall log. *)
val draw_stall : t -> site:int -> now:int -> int option

(** Delay decision for one RPC message. *)
val draw_rpc_delay : t -> int option

type drop = No_drop | Drop_request | Drop_reply

(** Loss decision for one RPC delivery attempt. *)
val draw_rpc_drop : t -> drop

(** Latency multiplier for an access to [pmm] at [now]; 1 when cool. May
    open a new hot window. *)
val hotspot_factor : t -> pmm:int -> now:int -> int

(** {2 Accounting} *)

val stalls_injected : t -> int

(** Stalls injected at one fault-point site. *)
val stalls_at : t -> site:int -> int

val rpc_delays_injected : t -> int
val rpc_drops_injected : t -> int
val hotspots_injected : t -> int
val total_injected : t -> int

(** Chronological [(start, duration)] log of injected stalls, for
    recovery-latency analysis. *)
val stall_log : t -> (int * int) list
