(* Deterministic fault injection.

   A fault plan is a seeded recipe for adversity: lock-holder stalls
   (a holder preempted mid-critical-section), RPC delays and losses (a
   request or reply held up or dropped in the interconnect, forcing the
   caller to resend), memory hot-spots (a PMM serving accesses at a
   multiple of its normal latency for a window), and — the terminal case —
   fail-stop processor crashes (a processor halts mid-whatever, holding
   whatever it holds, and never runs another instruction unless the plan
   grants it a restart).

   All draws come from the plan's own splitmix64 stream ({!Rng}), so a
   given (config, workload) pair replays bit-for-bit, and the plan never
   perturbs the random streams of the processors it torments. Every
   injected fault is counted — experiments reconcile observed degradation
   against these counters.

   The plan is pure bookkeeping: it never advances simulated time itself.
   The injection sites (Hector.Ctx, Hector.Machine, Hkernel.Rpc) ask it
   what to inject and charge the simulated cycles themselves, and they ask
   only when a plan is installed — with no plan there are no draws, no
   branches taken, and identical timing. Crashes keep the same discipline:
   with [crash_rate = 0.0] the crash question costs no draw, so a plan
   exercising only the other fault kinds replays bit-for-bit against
   earlier versions of itself. *)

type config = {
  seed : int;
  stall_rate : float; (* P(stall) per fault point visit *)
  stall_every : int;
      (* scheduled mode: >0 injects a stall at the first fault-point visit
         on or after each multiple of this period — a fixed dosage,
         independent of how often the workload visits fault points, so
         mechanisms can be compared under identical adversity *)
  stall_cycles : int; (* how long a stalled holder is away *)
  rpc_delay_rate : float; (* P(delay) per message (request and reply) *)
  rpc_delay_cycles : int;
  rpc_drop_rate : float; (* P(loss) per call; at most one loss per call *)
  reply_timeout : int; (* caller resends after this many cycles; 0 = never *)
  hotspot_rate : float; (* P(window opens) per access to a cool PMM *)
  hotspot_factor : int; (* latency multiplier while hot *)
  hotspot_cycles : int; (* window length *)
  crash_rate : float; (* P(fail-stop) per fault point visit *)
  crash_at : (int * int) list; (* scheduled kills: (time, processor) *)
  restart_after : int; (* >0: a crashed processor revives after this many
                          cycles (fail-restart); 0 = crashes are forever *)
}

let disabled =
  {
    seed = 1;
    stall_rate = 0.0;
    stall_every = 0;
    stall_cycles = 0;
    rpc_delay_rate = 0.0;
    rpc_delay_cycles = 0;
    rpc_drop_rate = 0.0;
    reply_timeout = 0;
    hotspot_rate = 0.0;
    hotspot_factor = 1;
    hotspot_cycles = 0;
    crash_rate = 0.0;
    crash_at = [];
    restart_after = 0;
  }

let validate cfg =
  let check_rate name r =
    if r < 0.0 || r > 1.0 then
      invalid_arg (Printf.sprintf "Fault: %s must be in [0,1]" name)
  in
  check_rate "stall_rate" cfg.stall_rate;
  if cfg.stall_every < 0 then invalid_arg "Fault: stall_every must be >= 0";
  if cfg.stall_rate > 0.0 && cfg.stall_every > 0 then
    invalid_arg "Fault: stall_rate and stall_every are mutually exclusive";
  check_rate "rpc_delay_rate" cfg.rpc_delay_rate;
  check_rate "rpc_drop_rate" cfg.rpc_drop_rate;
  check_rate "hotspot_rate" cfg.hotspot_rate;
  if cfg.hotspot_factor < 1 then
    invalid_arg "Fault: hotspot_factor must be >= 1";
  if cfg.rpc_drop_rate > 0.0 && cfg.reply_timeout <= 0 then
    invalid_arg "Fault: rpc_drop_rate > 0 needs a positive reply_timeout";
  check_rate "crash_rate" cfg.crash_rate;
  List.iter
    (fun (time, proc) ->
      if time < 0 then invalid_arg "Fault: crash_at times must be >= 0";
      if proc < 0 then invalid_arg "Fault: crash_at processors must be >= 0")
    cfg.crash_at;
  if cfg.restart_after < 0 then
    invalid_arg "Fault: restart_after must be >= 0";
  cfg

type drop = No_drop | Drop_request | Drop_reply
type kind = Stall | Rpc_delay | Rpc_drop | Hotspot | Crash | Restart

let kind_name = function
  | Stall -> "stall"
  | Rpc_delay -> "rpc_delay"
  | Rpc_drop -> "rpc_drop"
  | Hotspot -> "hotspot"
  | Crash -> "crash"
  | Restart -> "restart"

type event = {
  kind : kind;
  time : int;
  where : int; (* stall: site; hotspot: pmm; crash/restart: processor;
                  rpc events: -1 (no stable anchor) *)
  cycles : int; (* stall/delay/hotspot durations; 0 otherwise *)
}

type t = {
  cfg : config;
  rng : Rng.t;
  mutable stalls : int;
  site_stalls : (int, int) Hashtbl.t;
  mutable rpc_delays : int;
  mutable rpc_drops : int;
  mutable hotspots : int;
  mutable crashes : int;
  mutable restarts : int;
  (* One chronological log for every injected fault, appended in event
     order (injection sites only ever ask about "now", which the engine
     drives monotonically). A plain growable array: O(1) amortised append
     and no per-call reversal — the old stall log was kept newest-first
     and rebuilt with [List.rev] on every read. *)
  mutable log : event array;
  mutable log_len : int;
  mutable next_stall : int; (* scheduled mode: earliest time of the next stall *)
  hot_until : (int, int) Hashtbl.t; (* pmm -> window end *)
}

let create cfg =
  let cfg = validate cfg in
  {
    cfg;
    rng = Rng.create cfg.seed;
    stalls = 0;
    site_stalls = Hashtbl.create 8;
    rpc_delays = 0;
    rpc_drops = 0;
    hotspots = 0;
    crashes = 0;
    restarts = 0;
    log = [||];
    log_len = 0;
    next_stall = cfg.stall_every;
    hot_until = Hashtbl.create 8;
  }

let config t = t.cfg
let reply_timeout t = t.cfg.reply_timeout

let stalls_injected t = t.stalls

let stalls_at t ~site =
  match Hashtbl.find_opt t.site_stalls site with Some n -> n | None -> 0

let rpc_delays_injected t = t.rpc_delays
let rpc_drops_injected t = t.rpc_drops
let hotspots_injected t = t.hotspots
let crashes_injected t = t.crashes
let restarts_injected t = t.restarts

let total_injected t =
  t.stalls + t.rpc_delays + t.rpc_drops + t.hotspots + t.crashes

let log_event t ev =
  let cap = Array.length t.log in
  if t.log_len = cap then begin
    let grown = Array.make (max 16 (2 * cap)) ev in
    Array.blit t.log 0 grown 0 cap;
    t.log <- grown
  end;
  t.log.(t.log_len) <- ev;
  t.log_len <- t.log_len + 1

let log t = Array.to_list (Array.sub t.log 0 t.log_len)

(* Compatibility view: the stalls only, as (start, duration). *)
let stall_log t =
  List.filter_map
    (fun ev -> if ev.kind = Stall then Some (ev.time, ev.cycles) else None)
    (log t)

(* Should the caller stall at this fault point?  Returns the stall length;
   the caller spends the cycles (interruptibly — a preempted holder's
   processor still serves interrupts). *)
let record_stall t ~site ~now =
  t.stalls <- t.stalls + 1;
  Hashtbl.replace t.site_stalls site (stalls_at t ~site + 1);
  log_event t
    { kind = Stall; time = now; where = site; cycles = t.cfg.stall_cycles };
  Some t.cfg.stall_cycles

let draw_stall t ~site ~now =
  if t.cfg.stall_every > 0 then
    if now >= t.next_stall then begin
      (* One stall per period; skipping quiet periods rather than bursting
         to catch up keeps the dosage bounded by elapsed time. *)
      t.next_stall <- now + t.cfg.stall_every;
      record_stall t ~site ~now
    end
    else None
  else if t.cfg.stall_rate <= 0.0 then None
  else if Rng.float t.rng < t.cfg.stall_rate then record_stall t ~site ~now
  else None

(* Should this message (request or reply) be held up in the interconnect? *)
let draw_rpc_delay t ~now =
  if t.cfg.rpc_delay_rate <= 0.0 then None
  else if Rng.float t.rng < t.cfg.rpc_delay_rate then begin
    t.rpc_delays <- t.rpc_delays + 1;
    log_event t
      {
        kind = Rpc_delay;
        time = now;
        where = -1;
        cycles = t.cfg.rpc_delay_cycles;
      };
    Some t.cfg.rpc_delay_cycles
  end
  else None

(* Should this delivery lose its request or its reply?  Drawn once per
   delivery attempt; the RPC layer enforces at most one loss per call. *)
let draw_rpc_drop t ~now =
  if t.cfg.rpc_drop_rate <= 0.0 then No_drop
  else if Rng.float t.rng < t.cfg.rpc_drop_rate then begin
    t.rpc_drops <- t.rpc_drops + 1;
    log_event t { kind = Rpc_drop; time = now; where = -1; cycles = 0 };
    if Rng.bool t.rng then Drop_request else Drop_reply
  end
  else No_drop

(* Latency multiplier for an access to [pmm] at time [now]: the configured
   factor while a hot window is open, 1 otherwise.  An access to a cool
   PMM may open a new window. *)
let hotspot_factor t ~pmm ~now =
  if t.cfg.hotspot_rate <= 0.0 then 1
  else begin
    let hot =
      match Hashtbl.find_opt t.hot_until pmm with
      | Some until -> now < until
      | None -> false
    in
    if hot then t.cfg.hotspot_factor
    else if Rng.float t.rng < t.cfg.hotspot_rate then begin
      t.hotspots <- t.hotspots + 1;
      Hashtbl.replace t.hot_until pmm (now + t.cfg.hotspot_cycles);
      log_event t
        {
          kind = Hotspot;
          time = now;
          where = pmm;
          cycles = t.cfg.hotspot_cycles;
        };
      t.cfg.hotspot_factor
    end
    else 1
  end

(* Should the visiting processor fail-stop at this fault point?  With
   [crash_rate = 0.0] this makes no draw, preserving the stream of a
   crash-free plan. The caller (Hector.Machine via Ctx) performs the kill
   and reports it through {!record_crash}, so scheduled and explicit kills
   land in the same log. *)
let draw_crash t =
  t.cfg.crash_rate > 0.0 && Rng.float t.rng < t.cfg.crash_rate

let record_crash t ~proc ~now =
  t.crashes <- t.crashes + 1;
  log_event t { kind = Crash; time = now; where = proc; cycles = 0 }

let record_restart t ~proc ~now =
  t.restarts <- t.restarts + 1;
  log_event t { kind = Restart; time = now; where = proc; cycles = 0 }

let crash_schedule t = t.cfg.crash_at
let restart_after t = t.cfg.restart_after
