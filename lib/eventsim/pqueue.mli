(** Binary min-heap of timestamped events, ordered by [(time, seq)].

    The sequence number breaks ties between events scheduled for the same
    instant, so the queue pops same-time events in insertion (FIFO) order and
    every simulation run is deterministic.

    Storage is structure-of-arrays ([times] / [seqs] / [payloads] columns):
    the hot path ([push], [min_time], [pop_payload]) compares and moves
    unboxed ints and allocates nothing except occasional capacity doublings.
    The [entry]-record views ([peek] / [pop] / [drain]) are convenience
    wrappers that do allocate. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push t ~time ~seq payload] inserts an event. [seq] must be unique per
    queue for deterministic ordering; the engine supplies a counter.
    Allocation-free except when the heap grows. *)
val push : 'a t -> time:int -> seq:int -> 'a -> unit

(** Earliest entry without removing it. Allocates the record. *)
val peek : 'a t -> 'a entry option

(** Timestamp of the earliest entry. Allocates the option. *)
val peek_time : 'a t -> int option

(** Timestamp of the earliest entry, or [max_int] when the queue is empty.
    Allocation-free; this is what the engine's run loop compares against. *)
val min_time : 'a t -> int

(** Remove and return the earliest entry. Allocates the record. *)
val pop : 'a t -> 'a entry option

(** Remove the earliest entry and return only its payload; allocation-free.
    @raise Invalid_argument on an empty queue — callers check [is_empty]. *)
val pop_payload : 'a t -> 'a

val clear : 'a t -> unit

(** Pop everything, in order. Mainly for tests. *)
val drain : 'a t -> 'a entry list
