(* Binary min-heap of timestamped events, flattened to structure-of-arrays.

   Events are ordered by (time, seq): the sequence number breaks ties so that
   events scheduled for the same instant run in FIFO order, which keeps every
   simulation deterministic.

   The heap stores its three columns in parallel arrays ([times], [seqs],
   [payloads]) instead of an array of records. Push and pop then compare and
   move unboxed ints, and the hot path ([push] / [min_time] / [pop_payload])
   allocates nothing: the only allocations ever made are the occasional
   capacity doublings. The record-returning [peek] / [pop] / [drain] views are
   kept for tests and casual callers. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable len : int;
}

let create () = { times = [||]; seqs = [||]; payloads = [||]; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* (time, seq) at index [i] sorts before (time, seq) at index [j]. *)
let before t i j =
  let ti = t.times.(i) and tj = t.times.(j) in
  ti < tj || (ti = tj && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let pl = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- pl

let grow t payload =
  let cap = Array.length t.times in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let times = Array.make ncap 0 in
    let seqs = Array.make ncap 0 in
    (* Fresh payload slots are filled with [payload]; it is about to be
       stored at [t.len] anyway, so no foreign value is retained. *)
    let payloads = Array.make ncap payload in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.seqs 0 seqs 0 t.len;
    Array.blit t.payloads 0 payloads 0 t.len;
    t.times <- times;
    t.seqs <- seqs;
    t.payloads <- payloads
  end

let push t ~time ~seq payload =
  grow t payload;
  let i = t.len in
  t.times.(i) <- time;
  t.seqs.(i) <- seq;
  t.payloads.(i) <- payload;
  t.len <- t.len + 1;
  (* Sift the new entry up to its place. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t i parent then begin
        swap t i parent;
        up parent
      end
    end
  in
  up i

let peek t =
  if t.len = 0 then None
  else Some { time = t.times.(0); seq = t.seqs.(0); payload = t.payloads.(0) }

let peek_time t = if t.len = 0 then None else Some t.times.(0)

(* Allocation-free view of the earliest timestamp: [max_int] when empty, so
   the engine's run loop can compare against a limit without an option. *)
let min_time t = if t.len = 0 then max_int else t.times.(0)

let sift_down t =
  let rec down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.len && before t l !smallest then smallest := l;
    if r < t.len && before t r !smallest then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      down !smallest
    end
  in
  down 0

(* Remove the root, returning only its payload; allocation-free. The vacated
   slot is overwritten with a live payload so popped closures are not
   retained by the heap (at most one stale payload survives in slot 0 when
   the heap drains completely). *)
let pop_payload t =
  if t.len = 0 then invalid_arg "Pqueue.pop_payload: empty";
  let top = t.payloads.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.times.(0) <- t.times.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.payloads.(0) <- t.payloads.(t.len);
    (* Drop the moved copy's old slot so the heap keeps no extra reference. *)
    t.payloads.(t.len) <- t.payloads.(0);
    sift_down t
  end;
  top

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) in
    let payload = pop_payload t in
    Some { time; seq; payload }
  end

let clear t =
  (* Release payload references beyond slot 0 (see [pop_payload]). *)
  if Array.length t.payloads > 0 then
    Array.fill t.payloads 1 (Array.length t.payloads - 1) t.payloads.(0);
  t.len <- 0

(* Pop all entries in order; used by tests. *)
let drain t =
  let rec go acc =
    match pop t with
    | None -> List.rev acc
    | Some e -> go (e :: acc)
  in
  go []
