(* Discrete-event engine.

   The engine owns the virtual clock and an event heap of thunks. Simulated
   code never blocks the OCaml runtime: anything that must wait re-schedules
   itself (see {!Process}). Time is measured in integer machine cycles.

   The dispatch loop is allocation-free: it reads the earliest timestamp with
   [Pqueue.min_time] (an int, [max_int] when drained) and takes the thunk
   with [Pqueue.pop_payload], so sustained runs cost the heap sift plus the
   thunk itself and nothing else. *)

exception Deadlock of string

type t = {
  mutable now : int;
  mutable seq : int;
  events : (unit -> unit) Pqueue.t;
  mutable executed : int;
  mutable max_events : int; (* safety valve against runaway simulations *)
}

let create ?(max_events = 200_000_000) () =
  { now = 0; seq = 0; events = Pqueue.create (); executed = 0; max_events }

let now t = t.now

let events_executed t = t.executed

let schedule t ~at f =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is in the past (now=%d)" at t.now);
  let seq = t.seq in
  t.seq <- seq + 1;
  Pqueue.push t.events ~time:at ~seq f

let schedule_after t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.now + delay) f

let pending t = Pqueue.length t.events

let step t =
  if Pqueue.is_empty t.events then false
  else begin
    let time = Pqueue.min_time t.events in
    let f = Pqueue.pop_payload t.events in
    t.now <- time;
    t.executed <- t.executed + 1;
    f ();
    true
  end

let budget_exhausted t =
  raise
    (Deadlock
       (Printf.sprintf "event budget exhausted (%d events executed)"
          t.max_events))

let run ?until t =
  (* [Pqueue.min_time] reads the earliest timestamp as a bare int, so the
     loop condition is two comparisons and allocates nothing. *)
  let limit = match until with None -> max_int | Some l -> l in
  if t.executed > t.max_events then budget_exhausted t;
  while (not (Pqueue.is_empty t.events)) && Pqueue.min_time t.events <= limit do
    let time = Pqueue.min_time t.events in
    let f = Pqueue.pop_payload t.events in
    t.now <- time;
    t.executed <- t.executed + 1;
    f ();
    if t.executed > t.max_events then budget_exhausted t
  done;
  match until with
  | Some limit when t.now < limit && Pqueue.is_empty t.events -> t.now <- limit
  | _ -> ()
