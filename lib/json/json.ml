(* Minimal JSON: a value tree, an exact-round-trip printer and a
   recursive-descent parser. See json.mli for why this is hand-rolled. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- printing ------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every float; force a marker so the parser reads the
   result back as a float, not an int. *)
let float_repr f =
  if f <> f then "null" (* NaN has no JSON spelling *)
  else if f = infinity then "1e999"
  else if f = neg_infinity then "-1e999"
  else begin
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let to_string ?(compact = false) v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_char buf '\n'; Buffer.add_string buf (String.make n ' ') in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          if not compact then indent (depth + 2);
          go (depth + 2) item)
        items;
      if not compact then indent depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          if not compact then indent (depth + 2);
          escape_to buf k;
          Buffer.add_char buf ':';
          if not compact then Buffer.add_char buf ' ';
          go (depth + 2) item)
        fields;
      if not compact then indent depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* -- parsing -------------------------------------------------------------- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > n then fail "bad \\u escape";
          (* [int_of_string_opt] so a non-hex digit fails with the
             parser's position-carrying error, not a bare [Failure]. *)
          let code =
            match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* Basic-plane only; enough for our own output. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        (* Out-of-int-range integer literal: keep it as a float. *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with Parse (off, msg) ->
    failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg off)

let member v key =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let get v key =
  match member v key with
  | Some x -> x
  | None -> failwith (Printf.sprintf "Json.get: missing key %S" key)
