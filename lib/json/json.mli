(** A minimal JSON tree, printer and parser — just enough for the
    observability exports ([BENCH_results.json], Chrome trace files) and
    the tests that read them back. No external dependency: the container
    has no JSON package, and the subset we need is small. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Serialise. Floats are printed with ["%.17g"] (and a forced [.0] when
    the result would read back as an integer), so a print/parse round trip
    reproduces the exact value. [compact] drops all whitespace; the default
    is 2-space-indented, one key per line — diff-friendly for committed
    files. *)
val to_string : ?compact:bool -> t -> string

(** Parse. Numbers without [.], [e] or [E] become [Int]; everything else
    [Float]. @raise Failure on malformed input, with an offset. *)
val of_string : string -> t

(** Object field lookup ([None] on a non-object or a missing key). *)
val member : t -> string -> t option

(** Like {!member}. @raise Failure when absent. *)
val get : t -> string -> t
