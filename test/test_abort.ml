(* Abort-injection property tests: every abortable [Lock.algo] must keep
   its invariants when timed attempts with random (often hopeless)
   deadlines are mixed into the traffic — mutual exclusion, conservation
   of completed acquires, no lost successor signals (every processor's
   final *untimed* acquire must still go through, so an abandonment that
   swallowed a hand-off shows up as an engine deadlock), and a fully free
   lock at quiescence. A separate case runs the ABORT-STORM workload and
   checks its acceptance facts: bounded return past the deadline, aborts
   attributed beyond the staller's cluster, prompt recovery. *)

open Eventsim
open Hector
open Locks
open Workloads

(* Every algorithm whose timed face can actually abandon (the composing
   layer knows: [Lock.t.abortable]); built per-machine since abortability
   is a static property of the algo. *)
let abortable_algos =
  [
    Lock.Spin { max_backoff_us = 35.0 };
    Lock.Mcs_original;
    Lock.Mcs_h1;
    Lock.Mcs_h2;
    Lock.Mcs_cas;
    Lock.Clh;
    Lock.Anderson;
  ]
  @ Lock.all_numa_algos
  (* The morphing lock rides along: every abandonment path must stay safe
     across drains and mid-flight morphs. *)
  @ [ Lock.adaptive ]

(* Drive [p] processors through a random mix of timed and untimed
   acquisitions. Timeouts are drawn from [0, timeout_cycles): zero-deadline
   attempts must fail fast with no side effect; short ones abandon
   mid-queue at either tree level of the composites. Each processor ends
   with one untimed acquire/release: if any abandonment lost a successor
   signal or stranded root ownership, that acquire never returns and the
   event budget trips (caught as [false] by the property wrapper). *)
let abort_stress ~algo ~p ~iters ~hold ~think ~timeout_cycles ~seed =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let lock = Lock.make machine algo in
  assert lock.Lock.abortable;
  let inside = ref 0 and peak = ref 0 in
  let wins = ref 0 and aborts = ref 0 in
  let rng = Rng.create seed in
  for proc = 0 to p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        let r = Ctx.rng ctx in
        for _ = 1 to iters do
          let got =
            if Rng.int r 4 > 0 then begin
              (* 3 in 4 attempts are timed, many with hopeless deadlines. *)
              let timeout = Rng.int r timeout_cycles in
              lock.Lock.try_acquire_for ctx
                ~deadline:(Machine.now machine + timeout)
            end
            else begin
              lock.Lock.acquire ctx;
              true
            end
          in
          if got then begin
            incr inside;
            peak := max !peak !inside;
            if hold > 0 then Ctx.work ctx hold;
            decr inside;
            incr wins;
            lock.Lock.release ctx
          end
          else incr aborts;
          if think > 0 then Ctx.work ctx (1 + Rng.int r think)
        done;
        (* Eventual acquisition: the untimed face must still work after
           arbitrary abandonment, and collects any leftover marked nodes. *)
        lock.Lock.acquire ctx;
        incr inside;
        peak := max !peak !inside;
        Ctx.work ctx 5;
        decr inside;
        incr wins;
        lock.Lock.release ctx)
  done;
  Engine.run eng;
  !peak = 1
  && !wins + !aborts = ((iters + 1) * p)
  && !(lock.Lock.acquires) = !wins
  && lock.Lock.is_free ()

let prop_abort_safety =
  QCheck.Test.make
    ~name:"every abortable Lock.algo: safety under random aborts" ~count:25
    QCheck.(
      quad (int_range 2 8) (int_range 0 60)
        (int_range 1 4000)
        (int_range 0 10000))
    (fun (p, hold, timeout_cycles, seed) ->
      List.for_all
        (fun algo ->
          match
            abort_stress ~algo ~p ~iters:6 ~hold ~think:30 ~timeout_cycles
              ~seed
          with
          | ok -> ok
          | exception _ -> false)
        abortable_algos)

(* The tentpole acceptance, as a plain test per NUMA composite: under a
   planted cross-cluster holder stall, expired waiters return within a
   bounded multiple of their deadline, aborts happen beyond the staller's
   own cluster, abandoned nodes are repaired, and the drained lock ends
   free. *)
let test_abort_storm_bounded () =
  let config =
    { Abort_storm.default_config with Abort_storm.window_us = 6000.0 }
  in
  List.iter
    (fun algo ->
      let r = Abort_storm.run ~config algo in
      let name = Lock.algo_name algo in
      Alcotest.(check bool) (name ^ " stalled") true (r.Abort_storm.stalls > 0);
      Alcotest.(check bool) (name ^ " aborted") true (r.Abort_storm.aborts > 0);
      Alcotest.(check bool)
        (name ^ " aborts beyond the staller's cluster")
        true
        (r.Abort_storm.remote_aborts > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s bounded return (ratio %.2f)" name
           r.Abort_storm.bound_ratio)
        true
        (r.Abort_storm.bound_ratio < 8.0);
      Alcotest.(check bool)
        (name ^ " observer saw the aborts")
        true
        (r.Abort_storm.obs_aborts > 0);
      Alcotest.(check bool)
        (name ^ " free after drain")
        true r.Abort_storm.final_free)
    (Lock.Mcs_h2 :: Lock.all_numa_algos)

(* Zero and negative deadlines: an attempt whose budget is already gone
   must fail fast without touching the lock — on every abortable algo,
   even while the lock is held by someone else. *)
let test_zero_deadline_fail_fast () =
  List.iter
    (fun algo ->
      let eng = Engine.create () in
      let machine = Machine.create eng Config.numachine in
      let lock = Lock.make machine algo in
      let name = Lock.algo_name algo in
      let ctx0 = Ctx.create machine ~proc:0 (Rng.create 1) in
      let ctx1 = Ctx.create machine ~proc:1 (Rng.create 2) in
      Process.spawn eng (fun () ->
          lock.Lock.acquire ctx0;
          Ctx.work ctx0 500;
          lock.Lock.release ctx0);
      Process.spawn eng (fun () ->
          Process.pause eng 50;
          let now = Machine.now machine in
          Alcotest.(check bool)
            (name ^ " zero deadline fails") false
            (lock.Lock.try_acquire_for ctx1 ~deadline:now);
          Alcotest.(check bool)
            (name ^ " past deadline fails") false
            (lock.Lock.try_acquire_for ctx1 ~deadline:(now - 100)));
      Engine.run eng;
      Alcotest.(check bool) (name ^ " free at end") true (lock.Lock.is_free ()))
    abortable_algos

let suite =
  [
    QCheck_alcotest.to_alcotest prop_abort_safety;
    Alcotest.test_case "abort storm: bounded abandonment per composite"
      `Quick test_abort_storm_bounded;
    Alcotest.test_case "zero/negative deadline fails fast" `Quick
      test_zero_deadline_fail_fast;
  ]
