(* Test runner: every suite in one alcotest binary. *)

let () =
  Alcotest.run "hurricane"
    [
      ("pqueue", Test_pqueue.suite);
      ("engine", Test_engine.suite);
      ("process", Test_process.suite);
      ("resource", Test_resource.suite);
      ("stat", Test_stat.suite);
      ("rng", Test_rng.suite);
      ("ivar", Test_ivar.suite);
      ("config", Test_config.suite);
      ("machine", Test_machine.suite);
      ("ctx", Test_ctx.suite);
      ("locks", Test_locks.suite);
      ("mcs", Test_mcs.suite);
      ("clustering", Test_clustering.suite);
      ("khash", Test_khash.suite);
      ("rpc", Test_rpc.suite);
      ("fault", Test_fault.suite);
      ("memmgr", Test_memmgr.suite);
      ("procs", Test_procs.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
      ("extensions", Test_extensions.suite);
      ("lock_family", Test_lock_family.suite);
      ("numa_locks", Test_numa_locks.suite);
      ("abort", Test_abort.suite);
      ("adaptive", Test_adaptive.suite);
      ("crash", Test_crash.suite);
      ("cow", Test_cow.suite);
      ("report", Test_report.suite);
      ("fserver", Test_fserver.suite);
      ("kernel", Test_kernel.suite);
      ("integration", Test_integration.suite);
      ("verify", Test_verify.suite);
      ("obs", Test_obs.suite);
      ("rw", Test_rw.suite);
      ("par", Test_par.suite);
      ("slo", Test_slo.suite);
    ]
