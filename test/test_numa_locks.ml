(* Property tests for the composing lock layer: every [Lock.algo] must
   preserve mutual exclusion and conserve completed acquires under
   randomized schedules, and CNA's secondary queue must respect its
   starvation bound. *)

open Eventsim
open Hector
open Locks

(* Every constructible algorithm on a CAS-capable NUMA machine. [Null] is
   excluded by design — it provides no mutual exclusion. *)
let all_algos =
  [
    Lock.Spin { max_backoff_us = 35.0 };
    Lock.Mcs_original;
    Lock.Mcs_h1;
    Lock.Mcs_h2;
    Lock.Mcs_cas;
    Lock.Clh;
    Lock.Ticket;
    Lock.Anderson;
    Lock.Spin_then_block { spin_us = 10.0 };
  ]
  @ Lock.all_numa_algos

(* Drive [p] processors through acquire/work/release cycles via the uniform
   interface and check the invariants: never two inside, every iteration
   completed, the instrumentation counted exactly the completed acquires,
   and the lock is free at quiescence. *)
let stress ~algo ~p ~iters ~hold ~think ~seed =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let lock = Lock.make machine algo in
  let inside = ref 0 and peak = ref 0 and completed = ref 0 in
  let rng = Rng.create seed in
  for proc = 0 to p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        for _ = 1 to iters do
          lock.Lock.acquire ctx;
          incr inside;
          peak := max !peak !inside;
          if hold > 0 then Ctx.work ctx hold;
          decr inside;
          lock.Lock.release ctx;
          if think > 0 then Ctx.work ctx (1 + Rng.int (Ctx.rng ctx) think)
        done;
        completed := !completed + iters)
  done;
  Engine.run eng;
  !peak = 1
  && !completed = p * iters
  && !(lock.Lock.acquires) = p * iters
  && lock.Lock.is_free ()

let prop_safety =
  QCheck.Test.make ~name:"every Lock.algo: mutual exclusion + conservation"
    ~count:30
    QCheck.(
      quad (int_range 2 8) (int_range 0 60) (int_range 0 40)
        (int_range 0 10000))
    (fun (p, hold, think, seed) ->
      List.for_all
        (fun algo ->
          match stress ~algo ~p ~iters:6 ~hold ~think ~seed with
          | ok -> ok
          | exception _ -> false)
        all_algos)

(* CNA's escape hatch: a waiter moved to the secondary queue is overtaken by
   at most [threshold] + 1 critical sections. A single cluster-1 waiter
   enqueues right behind the initial cluster-0 holder; a stream of cluster-0
   waiters keeps the local queue non-empty far past the threshold. The
   remote waiter must still be served within [threshold] + 1 hand-offs. *)
let test_cna_starvation_bound () =
  let threshold = 3 in
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let lock =
    Cna.create ~home:0 ~threshold ~topo:(Lock_core.topo_of_machine machine)
      machine
  in
  let order = ref [] in
  let ctx p = Ctx.create machine ~proc:p (Rng.create (900 + p)) in
  (* Proc 0 (cluster 0) holds while everyone else enqueues. *)
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Cna.acquire lock c;
      order := 0 :: !order;
      Ctx.work c 3000;
      Cna.release lock c);
  (* The remote waiter (station 1) enqueues first, right behind the
     holder, so every local hand-off overtakes it. *)
  Process.spawn eng (fun () ->
      let c = ctx 4 in
      Process.pause eng 200;
      Cna.acquire lock c;
      order := 4 :: !order;
      Ctx.work c 50;
      Cna.release lock c);
  for p = 1 to 3 do
    Process.spawn eng (fun () ->
        let c = ctx p in
        Process.pause eng (400 + (150 * p));
        for _ = 1 to 8 do
          Cna.acquire lock c;
          order := p :: !order;
          Ctx.work c 50;
          Cna.release lock c;
          Ctx.work c 30
        done)
  done;
  Engine.run eng;
  let order = List.rev !order in
  (* How many acquisitions after the initial holder's before the remote
     waiter got in. *)
  let rec pos i = function
    | [] -> Alcotest.fail "remote waiter never acquired"
    | 4 :: _ -> i
    | _ :: tl -> pos (i + 1) tl
  in
  let overtakes = pos 0 (List.tl order) in
  Alcotest.(check bool)
    (Printf.sprintf "served within threshold+1 (overtaken %d times)" overtakes)
    true
    (overtakes <= threshold + 1);
  Alcotest.(check bool) "secondary queue engaged" true (Cna.moved lock > 0);
  Alcotest.(check bool) "spliced back into service" true (Cna.flushes lock > 0);
  Alcotest.(check bool) "free at end" true (Cna.is_free lock)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_safety;
    Alcotest.test_case "CNA starvation bound (escape hatch)" `Quick
      test_cna_starvation_bound;
  ]
