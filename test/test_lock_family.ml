(* Tests for the lock-family extensions (ticket, Anderson) and the
   four-classes capstone workload. *)

open Eventsim
open Hector
open Locks

let make_numa () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let ctx p = Ctx.create machine ~proc:p (Rng.create (600 + p)) in
  (eng, machine, ctx)

let stress_lock acquire release machine eng ctx_of =
  let inside = ref 0 and peak = ref 0 and total = ref 0 in
  for proc = 0 to 7 do
    let ctx = ctx_of proc in
    Process.spawn eng (fun () ->
        for _ = 1 to 25 do
          acquire ctx;
          incr inside;
          peak := max !peak !inside;
          incr total;
          Ctx.work ctx 40;
          decr inside;
          release ctx
        done)
  done;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !peak;
  Alcotest.(check int) "all ran" 200 !total;
  ignore machine

let test_ticket_mutual_exclusion () =
  let eng, machine, ctx = make_numa () in
  let lock = Ticket_lock.create ~home:0 machine in
  stress_lock (Ticket_lock.acquire lock) (Ticket_lock.release lock) machine eng ctx;
  Alcotest.(check int) "acquisitions" 200 (Ticket_lock.acquisitions lock);
  Alcotest.(check bool) "free at end" true (Ticket_lock.is_free lock)

let test_ticket_fifo () =
  let eng, machine, ctx = make_numa () in
  let lock = Ticket_lock.create ~home:0 machine in
  let order = ref [] in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Ticket_lock.acquire lock c;
      Ctx.work c 3000;
      Ticket_lock.release lock c);
  for p = 1 to 4 do
    Process.spawn eng (fun () ->
        let c = ctx p in
        Process.pause eng (150 * p);
        Ticket_lock.acquire lock c;
        order := p :: !order;
        Ticket_lock.release lock c)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "tickets are FIFO" [ 1; 2; 3; 4 ]
    (List.rev !order)

let test_ticket_needs_cas () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  Alcotest.(check bool) "refused on swap-only HECTOR" true
    (match Ticket_lock.create machine with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_anderson_mutual_exclusion () =
  let eng, machine, ctx = make_numa () in
  let lock = Anderson_lock.create ~home:0 machine in
  stress_lock (Anderson_lock.acquire lock) (Anderson_lock.release lock) machine
    eng ctx;
  Alcotest.(check int) "acquisitions" 200 (Anderson_lock.acquisitions lock)

let test_anderson_fifo () =
  let eng, machine, ctx = make_numa () in
  let lock = Anderson_lock.create ~home:0 machine in
  let order = ref [] in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Anderson_lock.acquire lock c;
      Ctx.work c 3000;
      Anderson_lock.release lock c);
  for p = 1 to 4 do
    Process.spawn eng (fun () ->
        let c = ctx p in
        Process.pause eng (150 * p);
        Anderson_lock.acquire lock c;
        order := p :: !order;
        Anderson_lock.release lock c)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "slots are FIFO" [ 1; 2; 3; 4 ] (List.rev !order)

let test_space_accounting () =
  let w a = Lock.space_words ~n_procs:16 a in
  Alcotest.(check int) "spin" 1 (w (Lock.Spin { max_backoff_us = 35.0 }));
  Alcotest.(check int) "ticket" 2 (w Lock.Ticket);
  Alcotest.(check int) "anderson" 17 (w Lock.Anderson);
  (* "an additional two words per actively spinning processor" *)
  Alcotest.(check int) "mcs" 33 (w Lock.Mcs_h2);
  Alcotest.(check bool) "clh comparable to mcs" true (w Lock.Clh <= w Lock.Mcs_h2);
  (* The NUMA composites at P = 16, C = 4 (the numachine clustering); the
     formulas are documented in lock.mli. *)
  let w4 a = Lock.space_words ~n_clusters:4 ~n_procs:16 a in
  Alcotest.(check int) "cohort = global + C*local + 2C" 173 (w4 Lock.c_mcs_mcs);
  Alcotest.(check int) "hmcs = 1 + 3C + 2P" 45 (w4 Lock.hmcs);
  Alcotest.(check int) "cna = 3 + 3P" 51 (w4 Lock.cna);
  (* CNA's "compact" claim: its footprint does not grow with the cluster
     count. *)
  Alcotest.(check int) "cna is cluster-independent" (w4 Lock.cna)
    (Lock.space_words ~n_clusters:1 ~n_procs:16 Lock.cna);
  (* Adaptive reports the mode word plus the max over its shapes — only
     one shape's words carry the lock at a time (the morph guard keeps
     the inactive shapes quiescent), so the sum would overstate the
     active footprint. At P=16, C=4: 1 + max(spin 1, mcs 33, cna 51). *)
  Alcotest.(check int) "adaptive = 1 + max over shapes" 52 (w4 Lock.adaptive);
  Alcotest.(check int) "adaptive(cohort) = 1 + max(1, 33, 173)" 174
    (w4 (Lock.Adaptive { numa = Lock.c_mcs_mcs }))

let test_lock_family_via_uniform_interface () =
  let eng, machine, ctx = make_numa () in
  List.iter
    (fun algo ->
      let lock = Lock.make machine algo in
      Process.spawn eng (fun () ->
          let c = ctx 0 in
          lock.Lock.acquire c;
          lock.Lock.release c;
          Alcotest.(check bool)
            (Lock.algo_name algo ^ " free after")
            true (lock.Lock.is_free ())))
    ([ Lock.Ticket; Lock.Anderson ] @ Lock.all_numa_algos);
  Engine.run eng

let test_four_classes_shape () =
  let r =
    Workloads.Four_classes.run
      ~config:{ Workloads.Four_classes.default_config with iters = 30 }
      ()
  in
  let open Workloads in
  (* Classes 1-3 stay near the uncontended fault cost even while class 4
     runs; class 4 pays the cross-cluster ownership traffic. *)
  Alcotest.(check bool) "class 1 near baseline" true
    (r.Four_classes.non_concurrent.Measure.mean_us < 260.0);
  Alcotest.(check bool) "class 2 near baseline" true
    (r.Four_classes.independent.Measure.mean_us < 260.0);
  Alcotest.(check bool) "class 3 absorbed by replication" true
    (r.Four_classes.read_shared.Measure.mean_us < 300.0);
  Alcotest.(check bool) "class 4 pays for write sharing" true
    (r.Four_classes.write_shared.Measure.mean_us
    > r.Four_classes.independent.Measure.mean_us *. 1.2);
  Alcotest.(check bool) "ownership traffic happened" true
    (r.Four_classes.invalidations > 0);
  Alcotest.(check bool) "replication happened" true
    (r.Four_classes.replications >= 16)

let test_lock_family_ablation_runs () =
  let rows = Hurricane.Experiments.ablation_lock_family () in
  Alcotest.(check int) "all six algorithms" 6 (List.length rows);
  List.iter
    (fun (r : Hurricane.Experiments.abl9_row) ->
      Alcotest.(check bool)
        (Lock.algo_name r.Hurricane.Experiments.algo9 ^ " sane")
        true
        (r.Hurricane.Experiments.unc_us > 0.0
        && r.Hurricane.Experiments.contended12_us
           > r.Hurricane.Experiments.unc_us))
    rows

let suite =
  [
    Alcotest.test_case "ticket mutual exclusion" `Quick
      test_ticket_mutual_exclusion;
    Alcotest.test_case "ticket FIFO" `Quick test_ticket_fifo;
    Alcotest.test_case "ticket needs CAS" `Quick test_ticket_needs_cas;
    Alcotest.test_case "Anderson mutual exclusion" `Quick
      test_anderson_mutual_exclusion;
    Alcotest.test_case "Anderson FIFO" `Quick test_anderson_fifo;
    Alcotest.test_case "lock space accounting" `Quick test_space_accounting;
    Alcotest.test_case "ticket/Anderson/composites via Lock.make" `Quick
      test_lock_family_via_uniform_interface;
    Alcotest.test_case "CLASSES: four access classes" `Slow
      test_four_classes_shape;
    Alcotest.test_case "ABL9: lock family runs" `Slow
      test_lock_family_ablation_runs;
  ]
