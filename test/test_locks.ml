(* Tests for backoff, the spin lock, reserve bits, the instruction model
   and the uniform lock interface. The MCS queue lock has its own file. *)

open Eventsim
open Hector
open Locks

let make () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let ctx p = Ctx.create machine ~proc:p (Rng.create (200 + p)) in
  (eng, machine, ctx)

let simulate eng f =
  Process.spawn eng f;
  Engine.run eng

(* -- backoff ---------------------------------------------------------------- *)

let test_backoff_growth () =
  let b = Backoff.create ~base:8 ~max_cycles:100 () in
  Alcotest.(check int) "initial" 8 (Backoff.initial b);
  Alcotest.(check int) "doubles" 16 (Backoff.next b 8);
  Alcotest.(check int) "caps" 100 (Backoff.next b 80);
  Alcotest.(check int) "stays capped" 100 (Backoff.next b 100)

let test_backoff_of_us () =
  let b = Backoff.of_us Config.hector ~max_us:35.0 () in
  Alcotest.(check int) "cap in cycles" 560 (Backoff.max_cycles b)

let test_backoff_rejects_bad () =
  Alcotest.(check bool) "max < base" true
    (match Backoff.create ~base:10 ~max_cycles:5 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_backoff_delay_in_range () =
  let eng, machine, ctx = make () in
  let c = ctx 0 in
  let b = Backoff.create ~base:8 ~max_cycles:1000 () in
  simulate eng (fun () ->
      for _ = 1 to 50 do
        let t0 = Machine.now machine in
        Backoff.delay_on c b 100;
        let dt = Machine.now machine - t0 in
        Alcotest.(check bool) "jittered within [50,100]" true
          (dt >= 50 && dt <= 100)
      done)

(* -- spin lock ---------------------------------------------------------------- *)

let test_spin_mutual_exclusion () =
  let eng, machine, ctx = make () in
  let lock = Spin_lock.create machine ~home:0 (Backoff.create ~max_cycles:560 ()) in
  let inside = ref 0 and peak = ref 0 and total = ref 0 in
  for p = 0 to 7 do
    let c = ctx p in
    Process.spawn eng (fun () ->
        for _ = 1 to 25 do
          Spin_lock.acquire lock c;
          incr inside;
          peak := max !peak !inside;
          incr total;
          Ctx.work c 30;
          decr inside;
          Spin_lock.release lock c
        done)
  done;
  Engine.run eng;
  Alcotest.(check int) "never two holders" 1 !peak;
  Alcotest.(check int) "all critical sections ran" 200 !total;
  Alcotest.(check int) "acquisitions counted" 200 (Spin_lock.acquisitions lock);
  Alcotest.(check bool) "released at end" false (Spin_lock.is_held lock)

let test_spin_try_acquire () =
  let eng, machine, ctx = make () in
  let lock =
    Spin_lock.create machine ~home:0 (Backoff.create ~max_cycles:560 ())
  in
  simulate eng (fun () ->
      let c = ctx 0 in
      Alcotest.(check bool) "free -> acquired" true (Spin_lock.try_acquire lock c);
      Alcotest.(check bool) "held -> refused" false (Spin_lock.try_acquire lock c);
      Spin_lock.release lock c;
      Alcotest.(check bool) "free again" true (Spin_lock.try_acquire lock c);
      Spin_lock.release lock c)

let test_spin_failed_attempts_counted () =
  let eng, machine, ctx = make () in
  let lock =
    Spin_lock.create machine ~home:0 (Backoff.create ~max_cycles:100 ())
  in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Spin_lock.acquire lock c;
      Ctx.work c 500;
      Spin_lock.release lock c);
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Process.pause eng 5;
      Spin_lock.acquire lock c;
      Spin_lock.release lock c);
  Engine.run eng;
  Alcotest.(check bool) "some attempts failed" true
    (Spin_lock.failed_attempts lock > 0)

(* -- reserve bits -------------------------------------------------------------- *)

let test_reserve_exclusive () =
  let eng, machine, ctx = make () in
  let status = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      let c = ctx 0 in
      Alcotest.(check bool) "free" false (Reserve.is_reserved c status);
      Alcotest.(check bool) "reserve" true (Reserve.try_reserve c status);
      Alcotest.(check bool) "now reserved" true (Reserve.is_reserved c status);
      Alcotest.(check bool) "second fails" false (Reserve.try_reserve c status);
      Reserve.clear c status;
      Alcotest.(check bool) "cleared" true (Reserve.try_reserve c status))

let test_reserve_readers () =
  let eng, machine, ctx = make () in
  let status = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      let c = ctx 0 in
      Alcotest.(check bool) "reader 1" true (Reserve.try_reserve_read c status);
      Alcotest.(check bool) "reader 2" true (Reserve.try_reserve_read c status);
      Alcotest.(check int) "count" 2 (Reserve.readers status);
      Alcotest.(check bool) "writer blocked by readers" false
        (Reserve.try_reserve c status);
      Reserve.clear_read c status;
      Reserve.clear_read c status;
      Alcotest.(check bool) "writer after readers gone" true
        (Reserve.try_reserve c status);
      Alcotest.(check bool) "reader blocked by writer" false
        (Reserve.try_reserve_read c status))

let test_reserve_known_value_skips_read () =
  let eng, machine, ctx = make () in
  let status = Machine.alloc machine ~home:5 0 in
  simulate eng (fun () ->
      let c = ctx 5 in
      let t0 = Machine.now machine in
      (* known: only the write (10 cycles local) plus a branch. *)
      Alcotest.(check bool) "reserve" true (Reserve.try_reserve ~known:0 c status);
      Alcotest.(check bool) "cheaper than read+write" true
        (Machine.now machine - t0 <= 14))

let test_spin_until_clear () =
  let eng, machine, ctx = make () in
  let status = Machine.alloc machine ~home:0 1 in
  let woke_at = ref 0 in
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Reserve.spin_until_clear c (Backoff.create ~max_cycles:100 ()) status;
      woke_at := Machine.now machine);
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Ctx.work c 500;
      Reserve.clear c status);
  Engine.run eng;
  Alcotest.(check bool) "woke after clear" true (!woke_at >= 500)

let test_write_reserved_flag () =
  let eng, machine, ctx = make () in
  let status = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      let c = ctx 0 in
      Alcotest.(check bool) "clear at rest" false (Reserve.write_reserved status);
      ignore (Reserve.try_reserve c status);
      Alcotest.(check bool) "set by a writer" true (Reserve.write_reserved status);
      Reserve.clear c status;
      ignore (Reserve.try_reserve_read c status);
      (* Readers count, but the write bit stays clear. *)
      Alcotest.(check bool) "not set by readers" false
        (Reserve.write_reserved status);
      Alcotest.(check int) "one reader" 1 (Reserve.readers status);
      Reserve.clear_read c status)

let test_spin_until_clear_timeout_clears_in_time () =
  let eng, machine, ctx = make () in
  let status = Machine.alloc machine ~home:0 1 in
  let got = ref None in
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      got :=
        Some
          (Reserve.spin_until_clear_timeout c
             (Backoff.create ~max_cycles:100 ())
             status ~timeout:5000));
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Ctx.work c 400;
      Reserve.clear c status);
  Engine.run eng;
  Alcotest.(check (option bool)) "saw the clear" (Some true) !got;
  Alcotest.(check bool) "after the holder cleared" true
    (Machine.now machine >= 400)

let test_spin_until_clear_timeout_expires () =
  (* The holder never clears: the waiter must give up at the deadline
     instead of spinning forever on a stalled holder. *)
  let eng, machine, ctx = make () in
  let status = Machine.alloc machine ~home:0 1 in
  let got = ref None in
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      got :=
        Some
          (Reserve.spin_until_clear_timeout c
             (Backoff.create ~max_cycles:100 ())
             status ~timeout:800));
  Engine.run eng;
  Alcotest.(check (option bool)) "gave up" (Some false) !got;
  Alcotest.(check bool) "spent at least the deadline" true
    (Machine.now machine >= 800);
  Alcotest.(check bool) "bit untouched" true (Reserve.write_reserved status)

let test_spin_until_clear_timeout_zero_deadline () =
  (* An already-expired deadline must fail immediately with no side
     effects: no time passes, no memory traffic, and the status word is
     untouched — even when the bit is actually clear and a single read
     would have succeeded. *)
  let eng, machine, ctx = make () in
  let set_status = Machine.alloc machine ~home:0 1 in
  let clear_status = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      let c = ctx 0 in
      let backoff = Backoff.create ~max_cycles:100 () in
      let t0 = Machine.now machine in
      Alcotest.(check bool) "timeout 0, bit set -> false" false
        (Reserve.spin_until_clear_timeout c backoff set_status ~timeout:0);
      Alcotest.(check bool) "timeout 0, bit clear -> still false" false
        (Reserve.spin_until_clear_timeout c backoff clear_status ~timeout:0);
      Alcotest.(check bool) "negative timeout -> false" false
        (Reserve.spin_until_clear_timeout c backoff clear_status ~timeout:(-5));
      Alcotest.(check int) "no simulated time consumed" t0 (Machine.now machine));
  Alcotest.(check bool) "bit untouched" true (Reserve.write_reserved set_status)

(* -- instruction model ----------------------------------------------------------- *)

let test_fig4_counts_match_paper () =
  List.iter
    (fun a ->
      let ours = Instr_model.counts a in
      let paper = Instr_model.paper_counts a in
      Alcotest.(check bool)
        (Instr_model.algo_name a ^ " matches Figure 4")
        true (ours = paper))
    Instr_model.all

let test_model_latency_ordering () =
  let cfg = Config.hector in
  let c a = Instr_model.predicted_cycles cfg a in
  Alcotest.(check bool) "MCS slowest" true
    (c Instr_model.Mcs_original > c Instr_model.Mcs_h1);
  Alcotest.(check bool) "H1 above H2" true
    (c Instr_model.Mcs_h1 > c Instr_model.Mcs_h2);
  Alcotest.(check bool) "H2 close to spin" true
    (c Instr_model.Mcs_h2 - c Instr_model.Spin <= 2)

let test_paths_compose () =
  List.iter
    (fun a ->
      let pair = Instr_model.pair_path a in
      let acq = Instr_model.acquire_path a in
      let rel = Instr_model.release_path a in
      Alcotest.(check int)
        (Instr_model.algo_name a ^ " pair = acquire @ release")
        (List.length pair)
        (List.length acq + List.length rel))
    Instr_model.all

(* -- uniform interface -------------------------------------------------------------- *)

let test_lock_make_all_algos () =
  let _, machine, _ = make () in
  List.iter
    (fun algo -> ignore (Lock.make machine algo))
    (Lock.Null :: Lock.all_paper_algos)

let test_lock_cas_requires_capability () =
  let _, machine, _ = make () in
  Alcotest.(check bool) "refused" true
    (match Lock.make machine Lock.Mcs_cas with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_with_lock_masked () =
  let eng, machine, ctx = make () in
  let lock = Lock.make machine Lock.Mcs_h2 in
  simulate eng (fun () ->
      let c = ctx 0 in
      Lock.with_lock_masked lock c (fun () ->
          Alcotest.(check bool) "masked inside" true (Ctx.soft_masked c));
      Alcotest.(check bool) "unmasked after" false (Ctx.soft_masked c);
      Alcotest.(check bool) "lock free after" true (lock.Lock.is_free ()))

let test_null_lock_is_free () =
  let eng, machine, ctx = make () in
  ignore machine;
  simulate eng (fun () ->
      let c = ctx 0 in
      Lock.null.Lock.acquire c;
      Alcotest.(check bool) "try always true" true (Lock.null.Lock.try_acquire c);
      Lock.null.Lock.release c)

let test_lock_instrumentation () =
  let eng, machine, ctx = make () in
  let lock = Lock.make machine Lock.Mcs_h2 in
  simulate eng (fun () ->
      let c = ctx 0 in
      for _ = 1 to 5 do
        lock.Lock.acquire c;
        lock.Lock.release c
      done);
  Alcotest.(check int) "acquires counted" 5 !(lock.Lock.acquires);
  Alcotest.(check bool) "wait cycles accumulated" true
    (!(lock.Lock.wait_cycles) > 0)

let suite =
  [
    Alcotest.test_case "backoff growth and cap" `Quick test_backoff_growth;
    Alcotest.test_case "backoff cap in us" `Quick test_backoff_of_us;
    Alcotest.test_case "backoff rejects bad bounds" `Quick test_backoff_rejects_bad;
    Alcotest.test_case "backoff jitter range" `Quick test_backoff_delay_in_range;
    Alcotest.test_case "spin lock mutual exclusion" `Quick
      test_spin_mutual_exclusion;
    Alcotest.test_case "spin try_acquire" `Quick test_spin_try_acquire;
    Alcotest.test_case "spin failed attempts counted" `Quick
      test_spin_failed_attempts_counted;
    Alcotest.test_case "reserve exclusive bit" `Quick test_reserve_exclusive;
    Alcotest.test_case "reserve reader-writer" `Quick test_reserve_readers;
    Alcotest.test_case "reserve with known status skips read" `Quick
      test_reserve_known_value_skips_read;
    Alcotest.test_case "spin_until_clear wakes on clear" `Quick
      test_spin_until_clear;
    Alcotest.test_case "write_reserved flag" `Quick test_write_reserved_flag;
    Alcotest.test_case "spin_until_clear_timeout sees the clear" `Quick
      test_spin_until_clear_timeout_clears_in_time;
    Alcotest.test_case "spin_until_clear_timeout zero deadline is inert" `Quick
      test_spin_until_clear_timeout_zero_deadline;
    Alcotest.test_case "spin_until_clear_timeout gives up" `Quick
      test_spin_until_clear_timeout_expires;
    Alcotest.test_case "Figure 4 counts match the paper" `Quick
      test_fig4_counts_match_paper;
    Alcotest.test_case "model latency ordering" `Quick test_model_latency_ordering;
    Alcotest.test_case "paths compose" `Quick test_paths_compose;
    Alcotest.test_case "Lock.make covers all algorithms" `Quick
      test_lock_make_all_algos;
    Alcotest.test_case "Mcs_cas needs a CAS machine" `Quick
      test_lock_cas_requires_capability;
    Alcotest.test_case "with_lock_masked" `Quick test_with_lock_masked;
    Alcotest.test_case "null lock" `Quick test_null_lock_is_free;
    Alcotest.test_case "lock instrumentation" `Quick test_lock_instrumentation;
  ]
