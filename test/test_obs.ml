(* Tests for the contention-observability subsystem: the Json codec, the
   profile accounting, the bounded trace ring, the no-perturbation identity
   on a real storm, and the BENCH_results.json schema. *)

open Eventsim
open Hector
open Workloads
open Hurricane

(* -- Json codec ------------------------------------------------------------ *)

let roundtrip v = Json.of_string (Json.to_string v)
let roundtrip_compact v = Json.of_string (Json.to_string ~compact:true v)

let test_json_roundtrip () =
  let values =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Int min_int;
      Json.Float 0.0;
      Json.Float 0.1;
      Json.Float (-1.5e-7);
      Json.Float 1e300;
      Json.Float 16.0625;
      Json.String "";
      Json.String "plain";
      Json.String "quote \" slash \\ newline \n tab \t";
      Json.List [];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
          ("nested", Json.Obj [ ("b", Json.String "x") ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) "pretty round trip" true (roundtrip v = v);
      Alcotest.(check bool) "compact round trip" true (roundtrip_compact v = v))
    values

let test_json_parse () =
  Alcotest.(check bool) "ints stay ints" true
    (Json.of_string "[1, -2, 0]" = Json.List [ Json.Int 1; Json.Int (-2); Json.Int 0 ]);
  Alcotest.(check bool) "floats stay floats" true
    (Json.of_string "1.5" = Json.Float 1.5);
  Alcotest.(check bool) "exponent is a float" true
    (Json.of_string "1e3" = Json.Float 1000.0);
  Alcotest.(check bool) "whitespace tolerated" true
    (Json.of_string "  { \"a\" : [ ] }\n" = Json.Obj [ ("a", Json.List []) ]);
  Alcotest.(check bool) "unicode escape" true
    (Json.of_string "\"\\u0041\\u00e9\"" = Json.String "A\xc3\xa9");
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (match Json.of_string s with
        | exception Failure _ -> true
        | _ -> false))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* -- profile accounting ----------------------------------------------------- *)

let cls_lock = Verify.lock_class "obs.test.lock"
let cls_res = Verify.lock_class "obs.test.reserve"

let find_row rows name =
  match List.find_opt (fun (r : Obs.row) -> r.Obs.row_class = name) rows with
  | Some r -> r
  | None -> Alcotest.failf "no profile row for %s" name

let test_lock_accounting () =
  (* Two procs per cluster. p0 acquires free, p1 waits through p0's hold
     (contended + handoff), p2 (cluster 1) try-acquires. *)
  let o = Obs.create ~cluster_of:(fun p -> p / 2) ~n_clusters:2 ~n_procs:4 () in
  Obs.lock_wait o ~proc:0 ~cls:cls_lock ~id:1 ~now:0;
  Obs.lock_acquired o ~proc:0 ~cls:cls_lock ~id:1 ~now:10;
  Obs.lock_wait o ~proc:1 ~cls:cls_lock ~id:1 ~now:20;
  Obs.lock_released o ~proc:0 ~cls:cls_lock ~id:1 ~now:50;
  Obs.lock_acquired o ~proc:1 ~cls:cls_lock ~id:1 ~now:60;
  Obs.lock_released o ~proc:1 ~cls:cls_lock ~id:1 ~now:90;
  Obs.lock_try_acquired o ~proc:2 ~cls:cls_lock ~id:2 ~now:0;
  Obs.lock_released o ~proc:2 ~cls:cls_lock ~id:2 ~now:5;
  let r = find_row (Obs.profile_rows o) "obs.test.lock" in
  Alcotest.(check int) "acqs" 3 r.Obs.total.Obs.acqs;
  Alcotest.(check int) "contended" 1 r.Obs.total.Obs.contended;
  Alcotest.(check int) "wait cycles" 50 r.Obs.total.Obs.wait_cycles;
  Alcotest.(check int) "hold cycles" 75 r.Obs.total.Obs.hold_cycles;
  Alcotest.(check int) "handoffs" 1 r.Obs.total.Obs.handoffs;
  (* Attribution splits by the acting processor's cluster. *)
  let c0 = List.assoc 0 r.Obs.by_cluster and c1 = List.assoc 1 r.Obs.by_cluster in
  Alcotest.(check int) "cluster 0 acqs" 2 c0.Obs.acqs;
  Alcotest.(check int) "cluster 0 wait" 50 c0.Obs.wait_cycles;
  Alcotest.(check int) "cluster 1 acqs" 1 c1.Obs.acqs;
  Alcotest.(check int) "cluster 1 hold" 5 c1.Obs.hold_cycles

let test_reserve_accounting () =
  let o = Obs.create ~cluster_of:(fun p -> p / 2) ~n_clusters:2 ~n_procs:4 () in
  (* p2 (cluster 1) sets word 7; p3 spins on it; p2 clears mid-spin. *)
  Obs.reserve_set o ~proc:2 ~cls:cls_res ~word:7 ~now:0;
  Obs.reserve_wait o ~proc:3 ~cls:cls_res ~word:7 ~now:5;
  Obs.reserve_clear o ~proc:2 ~word:7 ~now:40;
  Obs.reserve_wait_done o ~proc:3 ~now:45;
  let r = find_row (Obs.profile_rows o) "obs.test.reserve" in
  Alcotest.(check int) "acqs" 1 r.Obs.total.Obs.acqs;
  Alcotest.(check int) "contended (completed spins)" 1 r.Obs.total.Obs.contended;
  Alcotest.(check int) "spin cycles" 40 r.Obs.total.Obs.wait_cycles;
  Alcotest.(check int) "hold cycles" 40 r.Obs.total.Obs.hold_cycles;
  Alcotest.(check int) "cleared over a spinner = handoff" 1
    r.Obs.total.Obs.handoffs

let test_rpc_accounting () =
  let o = Obs.create ~n_procs:2 () in
  Obs.rpc_issue o ~proc:0 ~target:1 ~now:0;
  Obs.rpc_retry o ~proc:0 ~now:10;
  Obs.rpc_reply o ~proc:0 ~now:30;
  let r = find_row (Obs.profile_rows o) "rpc" in
  Alcotest.(check int) "issues" 1 r.Obs.total.Obs.acqs;
  Alcotest.(check int) "retries" 1 r.Obs.total.Obs.contended;
  Alcotest.(check int) "call cycles" 30 r.Obs.total.Obs.wait_cycles

let test_unmatched_events_tolerated () =
  (* An observer installed mid-run sees completions with no start; nothing
     may be counted for them and nothing may raise. *)
  let o = Obs.create ~n_procs:2 () in
  Obs.lock_released o ~proc:0 ~cls:cls_lock ~id:9 ~now:10;
  Obs.lock_wait_abandoned o ~proc:0 ~now:10;
  Obs.reserve_clear o ~proc:0 ~word:3 ~now:10;
  Obs.reserve_wait_done o ~proc:0 ~now:10;
  Obs.rpc_reply o ~proc:0 ~now:10;
  let rows = Obs.profile_rows o in
  Alcotest.(check bool) "only silent rows" true
    (List.for_all (fun (r : Obs.row) -> r.Obs.total.Obs.wait_cycles = 0) rows)

(* -- snapshot consistency ---------------------------------------------------

   The profile is sampled mid-run by host-side readers (the adaptive
   lock's policy, gauges, tests): after *every* hook, every row — total
   and per-cluster — must satisfy [contended <= acqs + aborts]. The
   ordering inside the abandon/optimistic-abort hooks (abort bumped
   before contended) is exactly what this property pins: a random
   interleaving of waits, acquisitions, abandonments, try-acquires and
   optimistic aborts across processors, clusters and two classes, with
   the invariant checked between every pair of events. *)

let cls_snap_a = Verify.lock_class "obs.test.snap.a"
let cls_snap_b = Verify.lock_class "obs.test.snap.b"

let snapshot_consistent rows =
  let ok (c : Obs.cells) = c.Obs.contended <= c.Obs.acqs + c.Obs.aborts in
  List.for_all
    (fun (r : Obs.row) ->
      ok r.Obs.total && List.for_all (fun (_, c) -> ok c) r.Obs.by_cluster)
    rows

let prop_snapshot_consistent =
  QCheck.Test.make
    ~name:"every mid-run sample satisfies contended <= acqs + aborts"
    ~count:50
    QCheck.(pair (int_range 2 6) (int_range 0 100_000))
    (fun (p, seed) ->
      let o =
        Obs.create ~cluster_of:(fun q -> q mod 2) ~n_clusters:2 ~n_procs:p ()
      in
      let rng = Rng.create seed in
      let state = Array.make p `Idle in
      let now = ref 0 in
      let ok = ref true in
      for _ = 1 to 200 do
        now := !now + 1 + Rng.int rng 50;
        let proc = Rng.int rng p in
        let cls = if Rng.int rng 2 = 0 then cls_snap_a else cls_snap_b in
        (match state.(proc) with
        | `Idle -> (
          match Rng.int rng 3 with
          | 0 ->
            Obs.lock_wait o ~proc ~cls ~id:proc ~now:!now;
            state.(proc) <- `Waiting cls
          | 1 ->
            Obs.lock_try_acquired o ~proc ~cls ~id:proc ~now:!now;
            state.(proc) <- `Holding cls
          | _ -> Obs.lock_optimistic_abort o ~proc ~cls ~now:!now)
        | `Waiting wcls ->
          if Rng.int rng 3 = 0 then begin
            Obs.lock_wait_abandoned o ~proc ~now:!now;
            state.(proc) <- `Idle
          end
          else begin
            Obs.lock_acquired o ~proc ~cls:wcls ~id:proc ~now:!now;
            state.(proc) <- `Holding wcls
          end
        | `Holding hcls ->
          Obs.lock_released o ~proc ~cls:hcls ~id:proc ~now:!now;
          state.(proc) <- `Idle);
        if not (snapshot_consistent (Obs.profile_rows o)) then ok := false
      done;
      !ok)

(* -- trace ring ------------------------------------------------------------ *)

let test_trace_ring_bounded () =
  let o = Obs.create ~trace:4 ~n_procs:1 () in
  for i = 1 to 10 do
    Obs.lock_try_acquired o ~proc:0 ~cls:cls_lock ~id:1 ~now:i
  done;
  Alcotest.(check int) "recorded" 10 (Obs.trace_recorded o);
  Alcotest.(check int) "dropped" 6 (Obs.trace_dropped o);
  let evs = Obs.trace o in
  Alcotest.(check int) "retained = capacity" 4 (List.length evs);
  Alcotest.(check (list int)) "oldest-first tail" [ 7; 8; 9; 10 ]
    (List.map (fun (e : Obs.event) -> e.Obs.time) evs)

let test_trace_off_records_nothing () =
  let o = Obs.create ~n_procs:1 () in
  Obs.lock_try_acquired o ~proc:0 ~cls:cls_lock ~id:1 ~now:1;
  Alcotest.(check int) "no ring" 0 (Obs.trace_recorded o);
  Alcotest.(check (list int)) "empty" []
    (List.map (fun (e : Obs.event) -> e.Obs.time) (Obs.trace o))

let test_trace_json_shape () =
  let o = Obs.create ~trace:64 ~cluster_of:(fun p -> p / 2) ~n_clusters:2
      ~n_procs:4 ()
  in
  Obs.lock_wait o ~proc:1 ~cls:cls_lock ~id:1 ~now:0;
  Obs.lock_acquired o ~proc:1 ~cls:cls_lock ~id:1 ~now:400;
  Obs.lock_released o ~proc:1 ~cls:cls_lock ~id:1 ~now:720;
  Obs.rpc_issue o ~proc:3 ~target:0 ~now:100;
  let doc = Obs.trace_json o ~us_per_cycle:(1.0 /. 16.0) in
  (* The export must itself be valid JSON. *)
  let parsed = Json.of_string (Json.to_string ~compact:true doc) in
  Alcotest.(check bool) "round trips" true (parsed = doc);
  match Json.get doc "traceEvents" with
  | Json.List evs ->
    let phase e =
      match Json.get e "ph" with Json.String s -> s | _ -> "?"
    in
    let spans = List.filter (fun e -> phase e = "X") evs in
    let instants = List.filter (fun e -> phase e = "i") evs in
    let meta = List.filter (fun e -> phase e = "M") evs in
    Alcotest.(check int) "two spans (acquire + hold)" 2 (List.length spans);
    Alcotest.(check int) "one instant (rpc issue)" 1 (List.length instants);
    (* 2 procs appear -> process_name + thread_name each. *)
    Alcotest.(check int) "metadata per proc" 4 (List.length meta);
    List.iter
      (fun e ->
        (match Json.get e "ts" with
        | Json.Float ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
        | _ -> Alcotest.fail "ts not a float");
        match Json.get e "dur" with
        | Json.Float d -> Alcotest.(check bool) "dur >= 0" true (d >= 0.0)
        | _ -> Alcotest.fail "dur not a float")
      spans;
    (* Complete events convert cycles to microseconds: the 400-cycle wait
       at 16 cycles/us is 25 us starting at ts 0. *)
    let acquire =
      List.find
        (fun e -> Json.get e "name" = Json.String "obs.test.lock acquire")
        spans
    in
    Alcotest.(check bool) "acquire ts" true (Json.get acquire "ts" = Json.Float 0.0);
    Alcotest.(check bool) "acquire dur" true
      (Json.get acquire "dur" = Json.Float 25.0)
  | _ -> Alcotest.fail "traceEvents not a list"

(* -- storms: no perturbation, real attribution ------------------------------ *)

(* Mirror of test_verify's checker identity: a dosed storm must return
   structurally identical results with profiling + tracing installed. *)
let test_observer_identity () =
  let cycles us = Config.cycles_of_us Config.hector us in
  let fault =
    {
      Fault.disabled with
      seed = 42;
      stall_every = cycles 1000.0;
      stall_cycles = cycles 1000.0;
    }
  in
  let config =
    { Fault_storm.default_config with window_us = 8_000.0; fault = Some fault }
  in
  let plain = Fault_storm.run ~config Fault_storm.Timeout in
  let o =
    Obs.create ~trace:4096
      ~cluster_of:(Config.station_of_proc Config.hector)
      ~n_clusters:Config.hector.Config.stations
      ~n_procs:(Config.n_procs Config.hector) ()
  in
  let observed = Fault_storm.run ~config ~obs:o Fault_storm.Timeout in
  Alcotest.(check bool) "identical results" true (plain = observed);
  Alcotest.(check bool) "and the profile is non-trivial" true
    (Obs.profile_rows o <> []);
  Alcotest.(check bool) "and the trace recorded events" true
    (Obs.trace_recorded o > 0)

let test_storm_attribution () =
  let r = Experiments.obs_profile () in
  let rows = r.Experiments.obs_rows in
  (* The storm's coarse locks, reserve bits and RPCs must all appear, with
     waiting attributed to the lock classes... *)
  let mcs = find_row rows "mcs" in
  let reserve = find_row rows "reserve" in
  let rpc = find_row rows "rpc" in
  Alcotest.(check bool) "mcs waits" true (mcs.Obs.total.Obs.wait_cycles > 0);
  Alcotest.(check bool) "mcs contended" true (mcs.Obs.total.Obs.contended > 0);
  Alcotest.(check bool) "reserve holds" true
    (reserve.Obs.total.Obs.hold_cycles > 0);
  Alcotest.(check bool) "rpc waits" true (rpc.Obs.total.Obs.wait_cycles > 0);
  (* ... and per cluster (station): the 8 workers span 2 stations. *)
  Alcotest.(check bool) "mcs split across clusters" true
    (List.length mcs.Obs.by_cluster >= 2);
  Alcotest.(check bool) "storm rows snapshot-consistent" true
    (snapshot_consistent rows);
  List.iter
    (fun (row : Obs.row) ->
      let sum f = List.fold_left (fun a (_, c) -> a + f c) 0 row.Obs.by_cluster in
      Alcotest.(check int)
        (row.Obs.row_class ^ " wait sums")
        row.Obs.total.Obs.wait_cycles
        (sum (fun c -> c.Obs.wait_cycles));
      Alcotest.(check int)
        (row.Obs.row_class ^ " acqs sum")
        row.Obs.total.Obs.acqs
        (sum (fun c -> c.Obs.acqs)))
    rows

(* -- BENCH_results.json ----------------------------------------------------- *)

let get_float doc key =
  match Json.get doc key with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> Alcotest.failf "%s is not a number" key

(* The acceptance set, on reduced knobs, through the same code path as the
   full export: schema fields present, document round-trips, and the
   numbers equal what the in-process runners return. *)
let test_bench_json_schema () =
  let names =
    [
      "fig4";
      "uncontended";
      "fig5a";
      "fig5b";
      "fig7a";
      "fig7b";
      "fig7c";
      "fig7d";
      "abort_storm";
      "crash_storm";
    ]
  in
  let doc =
    Bench_json.document ~procs:[ 2 ] ~sizes:[ 4 ] ~iters:5 ~rounds:2 ~names ()
  in
  Alcotest.(check bool) "document round trips" true
    (Json.of_string (Json.to_string doc) = doc);
  Alcotest.(check bool) "schema_version" true
    (Json.get doc "schema_version" = Json.Int Bench_json.schema_version);
  Alcotest.(check bool) "latency unit" true
    (Json.get (Json.get doc "units") "latency" = Json.String "us");
  let exps = Json.get doc "experiments" in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (Json.member exps n <> None))
    names;
  (* fig4: rows equal the in-process model (which is deterministic). *)
  (match Json.get exps "fig4" with
  | Json.List rows ->
    let direct = Experiments.fig4 () in
    Alcotest.(check int) "fig4 rows" (List.length direct) (List.length rows);
    List.iter2
      (fun row (d : Experiments.fig4_row) ->
        Alcotest.(check bool) "fig4 algo" true
          (Json.get row "algo"
          = Json.String (Locks.Instr_model.algo_name d.Experiments.algo));
        Alcotest.(check (float 0.0)) "fig4 predicted"
          d.Experiments.predicted_us
          (get_float row "predicted_us");
        Alcotest.(check bool) "fig4 atomic count" true
          (Json.get (Json.get row "ours") "atomic"
          = Json.Int d.Experiments.ours.Locks.Instr_model.atomic))
      rows direct
  | _ -> Alcotest.fail "fig4 not a list");
  (* uncontended: measured latencies equal a direct deterministic rerun. *)
  (match Json.get exps "uncontended" with
  | Json.List rows ->
    let direct = Experiments.uncontended () in
    List.iter2
      (fun row (d : Uncontended.result) ->
        Alcotest.(check bool) "unc algo" true
          (Json.get row "algo"
          = Json.String (Locks.Lock.algo_name d.Uncontended.algo));
        Alcotest.(check (float 0.0)) "unc pair_us" d.Uncontended.pair_us
          (get_float row "pair_us"))
      rows direct
  | _ -> Alcotest.fail "uncontended not a list");
  (* abort_storm: rows equal a direct deterministic rerun, and carry the
     acceptance facts (everyone aborts somewhere, bounded return, lock
     clean after the drain). *)
  (match Json.get exps "abort_storm" with
  | Json.List rows ->
    let direct = Experiments.abort_storm () in
    Alcotest.(check int) "abort rows" (List.length direct) (List.length rows);
    List.iter2
      (fun row (d : Experiments.abort_point) ->
        Alcotest.(check bool) "abort algo" true
          (Json.get row "algo"
          = Json.String (Locks.Lock.algo_name d.Experiments.aalgo));
        Alcotest.(check int) "abort aborts" d.Experiments.aaborts
          (match Json.get row "aborts" with Json.Int i -> i | _ -> -1);
        Alcotest.(check (float 0.0)) "abort bound ratio"
          d.Experiments.abound_ratio
          (get_float row "bound_ratio");
        Alcotest.(check bool) "abort final free" true
          (Json.get row "final_free" = Json.Bool true);
        Alcotest.(check bool) "abort remote aborts" true
          (d.Experiments.aremote_aborts > 0))
      rows direct
  | _ -> Alcotest.fail "abort_storm not a list");
  (* crash_storm: rows equal a direct deterministic rerun, and carry the
     acceptance facts (every kill recovered, the checker legalised every
     forced release with zero violations, lock free after the drain). *)
  (match Json.get exps "crash_storm" with
  | Json.List rows ->
    let direct = Experiments.crash_storm () in
    Alcotest.(check int) "crash rows" (List.length direct) (List.length rows);
    List.iter2
      (fun row (d : Experiments.crash_point) ->
        Alcotest.(check bool) "crash algo" true
          (Json.get row "algo"
          = Json.String (Locks.Lock.algo_name d.Experiments.calgo));
        Alcotest.(check int) "crash kills" d.Experiments.ckills
          (match Json.get row "kills" with Json.Int i -> i | _ -> -1);
        Alcotest.(check int) "crash recovery samples" d.Experiments.ckills
          (match Json.get row "recovery_n" with Json.Int i -> i | _ -> -1);
        Alcotest.(check (float 0.0)) "crash recovery p99"
          d.Experiments.crec_p99_us
          (get_float row "recovery_p99_us");
        Alcotest.(check bool) "crash zero violations" true
          (Json.get row "lockdep_violations" = Json.Int 0);
        Alcotest.(check bool) "crash final free" true
          (Json.get row "final_free" = Json.Bool true))
      rows direct
  | _ -> Alcotest.fail "crash_storm not a list");
  (* fig5a on the same knobs: series values equal the in-process sweep. *)
  let direct5 = Experiments.fig5a ~procs:[ 2 ] () in
  match Json.get (Json.get exps "fig5a") "series" with
  | Json.List series ->
    Alcotest.(check int) "fig5a series count" (List.length direct5)
      (List.length series);
    List.iter2
      (fun s (d : Experiments.fig5_series) ->
        match (Json.get s "points", d.Experiments.points) with
        | Json.List [ point ], [ (p, r) ] ->
          Alcotest.(check bool) "fig5a p" true (Json.get point "p" = Json.Int p);
          Alcotest.(check (float 0.0)) "fig5a mean"
            r.Lock_stress.summary.Measure.mean_us
            (get_float point "mean_us")
        | _ -> Alcotest.fail "fig5a point shape")
      series direct5
  | _ -> Alcotest.fail "fig5a series not a list"

let test_bench_json_rejects_unknown () =
  Alcotest.(check bool) "unknown name raises" true
    (match Bench_json.document ~names:[ "fig9000" ] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parse;
    Alcotest.test_case "lock accounting" `Quick test_lock_accounting;
    Alcotest.test_case "reserve accounting" `Quick test_reserve_accounting;
    Alcotest.test_case "rpc accounting" `Quick test_rpc_accounting;
    Alcotest.test_case "unmatched events tolerated" `Quick
      test_unmatched_events_tolerated;
    QCheck_alcotest.to_alcotest prop_snapshot_consistent;
    Alcotest.test_case "trace ring bounded" `Quick test_trace_ring_bounded;
    Alcotest.test_case "trace off records nothing" `Quick
      test_trace_off_records_nothing;
    Alcotest.test_case "trace json shape" `Quick test_trace_json_shape;
    Alcotest.test_case "observer on/off identity" `Quick test_observer_identity;
    Alcotest.test_case "storm attribution per class and cluster" `Quick
      test_storm_attribution;
    Alcotest.test_case "bench json schema and values" `Quick
      test_bench_json_schema;
    Alcotest.test_case "bench json rejects unknown names" `Quick
      test_bench_json_rejects_unknown;
  ]
