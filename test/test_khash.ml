(* Tests for the hybrid-locked chained hash table. *)

open Eventsim
open Hector
open Locks
open Hkernel

let make ?(granularity = Khash.Hybrid) ?(shards = 4) ?(lock_algo = Lock.Mcs_h2)
    () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let table =
    Khash.create machine ~granularity ~nbins:16 ~shards ~lock_algo
      ~homes:(List.init 16 (fun i -> i))
  in
  let ctx p = Ctx.create machine ~proc:p (Rng.create (400 + p)) in
  (eng, machine, table, ctx)

let simulate eng f =
  Process.spawn eng f;
  Engine.run eng

let test_insert_and_find () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      ignore (Khash.insert table c 42 ~make:(fun _ -> "hello"));
      match Khash.reserve_existing table c 42 with
      | None -> Alcotest.fail "not found"
      | Some e ->
        Alcotest.(check string) "payload" "hello" e.Khash.payload;
        Alcotest.(check int) "key" 42 e.Khash.key;
        Khash.release_reserve c e);
  Alcotest.(check int) "size" 1 (Khash.size table)

let test_missing_key () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      Alcotest.(check bool) "absent" true
        (Khash.reserve_existing table (ctx 0) 7 = None))

let test_reserve_blocks_second_reserver () =
  let eng, machine, table, ctx = make () in
  let order = ref [] in
  simulate eng (fun () ->
      ignore (Khash.insert table (ctx 0) 1 ~make:(fun _ -> ())));
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      match Khash.reserve_existing table c 1 with
      | Some e ->
        order := ("a-got", Machine.now machine) :: !order;
        Ctx.work c 1000;
        Khash.release_reserve c e;
        order := ("a-rel", Machine.now machine) :: !order
      | None -> Alcotest.fail "a missing");
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Process.pause eng 50;
      match Khash.reserve_existing table c 1 with
      | Some e ->
        order := ("b-got", Machine.now machine) :: !order;
        Khash.release_reserve c e
      | None -> Alcotest.fail "b missing");
  Engine.run eng;
  match List.rev !order with
  | [ ("a-got", _); ("a-rel", t_rel); ("b-got", t_b) ] ->
    Alcotest.(check bool) "b waited for a's release" true (t_b >= t_rel);
    Alcotest.(check bool) "conflict recorded" true
      (Khash.reserve_conflicts table >= 1)
  | other ->
    Alcotest.failf "unexpected order: %s"
      (String.concat "," (List.map fst other))

let test_reserve_or_insert_placeholder () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      (match Khash.reserve_or_insert table c 9 ~make:(fun _ -> "new") with
      | `Inserted e ->
        Alcotest.(check string) "fresh payload" "new" e.Khash.payload;
        (* Placeholder is born reserved: the combining-tree trick. *)
        Alcotest.(check bool) "born reserved" true
          (Reserve.write_reserved e.Khash.status);
        Khash.release_reserve c e
      | `Reserved _ -> Alcotest.fail "expected insertion");
      match Khash.reserve_or_insert table c 9 ~make:(fun _ -> "other") with
      | `Reserved e ->
        Alcotest.(check string) "existing payload" "new" e.Khash.payload;
        Khash.release_reserve c e
      | `Inserted _ -> Alcotest.fail "duplicate insertion")

let test_try_reserve_existing_fails_fast () =
  let eng, _, table, ctx = make () in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      ignore (Khash.insert table c 5 ~make:(fun _ -> ()));
      match Khash.reserve_existing table c 5 with
      | Some e ->
        Ctx.work c 2000;
        Khash.release_reserve c e
      | None -> Alcotest.fail "missing");
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Process.pause eng 700;
      (* While reserved: the non-blocking path must report the conflict. *)
      (match Khash.try_reserve_existing table c 5 with
      | `Would_deadlock -> ()
      | `Absent -> Alcotest.fail "should exist"
      | `Reserved _ -> Alcotest.fail "should be reserved by proc 0");
      match Khash.try_reserve_existing table c 999 with
      | `Absent -> ()
      | _ -> Alcotest.fail "999 should be absent");
  Engine.run eng

let test_remove () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      ignore (Khash.insert table c 3 ~make:(fun _ -> ()));
      Alcotest.(check bool) "removed" true (Khash.remove table c 3);
      Alcotest.(check bool) "gone" true (Khash.reserve_existing table c 3 = None);
      Alcotest.(check bool) "second remove false" false (Khash.remove table c 3));
  Alcotest.(check int) "size back to zero" 0 (Khash.size table)

let test_search_charges_probes () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      for k = 0 to 31 do
        ignore (Khash.insert table c k ~make:(fun _ -> ()))
      done;
      let before = Khash.probes table in
      (match Khash.reserve_existing table c 17 with
      | Some e -> Khash.release_reserve c e
      | None -> Alcotest.fail "missing");
      Alcotest.(check bool) "probes counted" true (Khash.probes table > before))

let test_with_element_all_granularities () =
  List.iter
    (fun granularity ->
      let eng, _, table, ctx = make ~granularity () in
      let hits = ref 0 in
      simulate eng (fun () ->
          let c = ctx 0 in
          ignore (Khash.insert table c 11 ~make:(fun _ -> ())));
      for p = 0 to 3 do
        Process.spawn eng (fun () ->
            let c = ctx p in
            for _ = 1 to 10 do
              match Khash.with_element table c 11 (fun _ -> incr hits) with
              | Some () -> ()
              | None -> Alcotest.fail "element vanished"
            done)
      done;
      Engine.run eng;
      Alcotest.(check int)
        (Khash.granularity_name granularity ^ " all ops ran")
        40 !hits)
    [ Khash.Hybrid; Khash.Coarse; Khash.Fine; Khash.Sharded ]

let test_with_element_missing () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      Alcotest.(check bool) "None for missing" true
        (Khash.with_element table (ctx 0) 123 (fun _ -> ()) = None))

let test_untimed_iteration () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      List.iter
        (fun k -> ignore (Khash.insert table c k ~make:(fun _ -> k * 10)))
        [ 1; 2; 3; 4; 5 ]);
  let keys = ref [] in
  Khash.iter_untimed table (fun e -> keys := e.Khash.key :: !keys);
  Alcotest.(check (list int)) "all keys" [ 1; 2; 3; 4; 5 ]
    (List.sort compare !keys);
  Alcotest.(check bool) "mem" true (Khash.mem_untimed table 3);
  Alcotest.(check bool) "not mem" false (Khash.mem_untimed table 9)

let test_coarse_lock_masks_interrupts () =
  (* with_coarse must set the soft mask so services cannot deadlock on the
     holder's own coarse lock. *)
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      Khash.with_coarse table c (fun () ->
          Alcotest.(check bool) "masked inside" true (Ctx.soft_masked c));
      Alcotest.(check bool) "unmasked outside" false (Ctx.soft_masked c))

(* The lock that protects [key]'s chain: the shard lock under [Sharded],
   the table lock otherwise. *)
let key_lock table key =
  match Khash.granularity table with
  | Khash.Sharded -> Khash.shard_lock table (Khash.shard_of_key table key)
  | Khash.Hybrid | Khash.Coarse | Khash.Fine -> Khash.coarse_lock table

exception Body_failed

let test_with_element_exception_safety () =
  List.iter
    (fun granularity ->
      let name = Khash.granularity_name granularity in
      let eng, _, table, ctx = make ~granularity () in
      simulate eng (fun () ->
          let c = ctx 0 in
          ignore (Khash.insert table c 11 ~make:(fun _ -> ()));
          (match Khash.with_element table c 11 (fun _ -> raise Body_failed) with
          | exception Body_failed -> ()
          | _ -> Alcotest.fail (name ^ ": exception swallowed"));
          Alcotest.(check bool) (name ^ ": soft mask cleared") false
            (Ctx.soft_masked c);
          Alcotest.(check bool) (name ^ ": protecting lock free") true
            ((key_lock table 11).Lock.is_free ());
          Khash.iter_untimed table (fun e ->
              Alcotest.(check bool) (name ^ ": reserve bit cleared") false
                (Reserve.write_reserved e.Khash.status);
              match e.Khash.elem_lock with
              | Some l ->
                Alcotest.(check bool) (name ^ ": element lock released") false
                  (Spin_lock.is_held l)
              | None -> ());
          (* The table is still usable from the same processor. *)
          match Khash.with_element table c 11 (fun _ -> ()) with
          | Some () -> ()
          | None -> Alcotest.fail (name ^ ": element lost")))
    [ Khash.Hybrid; Khash.Coarse; Khash.Fine; Khash.Sharded ]

let test_with_coarse_exception_safety () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      (match Khash.with_coarse table c (fun () -> raise Body_failed) with
      | exception Body_failed -> ()
      | _ -> Alcotest.fail "exception swallowed");
      Alcotest.(check bool) "lock released" true
        ((Khash.coarse_lock table).Lock.is_free ());
      Alcotest.(check bool) "mask cleared" false (Ctx.soft_masked c);
      (* ... and the section is immediately usable again. *)
      Khash.with_coarse table c (fun () ->
          Alcotest.(check bool) "masked again" true (Ctx.soft_masked c)))

let test_fine_untimed_insert_vclass () =
  let _, _, table, _ = make ~granularity:Khash.Fine () in
  let e = Khash.insert_untimed table 7 ~status0:0 ~make:(fun _ -> ()) in
  match e.Khash.elem_lock with
  | None -> Alcotest.fail "Fine element must carry a spin lock"
  | Some l ->
    Alcotest.(check string) "untimed insert uses the table's element class"
      "khash.elem"
      (Verify.class_name (Spin_lock.vclass l))

let test_bin_of_key_corners () =
  let _, _, table, _ = make () in
  List.iter
    (fun k ->
      let b = Khash.bin_of_key table k in
      Alcotest.(check bool)
        (Printf.sprintf "bin_of_key %d in range (got %d)" k b)
        true
        (b >= 0 && b < 16))
    [ min_int; min_int + 1; -1; 0; 1; max_int; max_int - 1; 2654435761 ]

let prop_bin_of_key_in_range =
  let _, _, table, _ = make () in
  QCheck.Test.make ~name:"bin_of_key total and in [0,nbins) for every int"
    ~count:1000 QCheck.int (fun k ->
      let b = Khash.bin_of_key table k in
      b >= 0 && b < 16)

let make_sharded_raw seed =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let table =
    Khash.create machine ~granularity:Khash.Sharded ~nbins:16 ~shards:4
      ~lock_algo:Lock.Mcs_h2
      ~homes:(List.init 16 (fun i -> i))
  in
  let ctx proc = Ctx.create machine ~proc (Rng.create (seed + (31 * proc))) in
  (eng, table, ctx)

let prop_sharded_mutual_exclusion =
  QCheck.Test.make ~name:"sharded: with_element is mutually exclusive per key"
    ~count:25
    QCheck.(triple (int_range 2 6) (int_range 1 12) (int_range 0 10000))
    (fun (p, ops, seed) ->
      let eng, table, ctx = make_sharded_raw seed in
      let nkeys = 8 in
      for k = 0 to nkeys - 1 do
        ignore (Khash.insert_untimed table k ~status0:0 ~make:(fun _ -> ()))
      done;
      let inside = Array.make nkeys 0 in
      let bad = ref false in
      let done_ops = ref 0 in
      for proc = 0 to p - 1 do
        Process.spawn eng (fun () ->
            let c = ctx proc in
            for _ = 1 to ops do
              let k = Rng.int (Ctx.rng c) nkeys in
              match
                Khash.with_element table c k (fun _ ->
                    inside.(k) <- inside.(k) + 1;
                    if inside.(k) > 1 then bad := true;
                    Ctx.work c (1 + Rng.int (Ctx.rng c) 20);
                    inside.(k) <- inside.(k) - 1)
              with
              | Some () -> incr done_ops
              | None -> bad := true
            done)
      done;
      Engine.run eng;
      (not !bad) && !done_ops = p * ops)

let prop_sharded_optimistic_lookup_consistency =
  QCheck.Test.make
    ~name:"sharded: optimistic lookups stay consistent under churn" ~count:20
    QCheck.(triple (int_range 2 6) (int_range 2 15) (int_range 0 10000))
    (fun (p, ops, seed) ->
      let eng, table, ctx = make_sharded_raw seed in
      let stable = 8 in
      for k = 0 to stable - 1 do
        ignore (Khash.insert_untimed table k ~status0:0 ~make:(fun _ -> ()))
      done;
      for proc = 0 to p - 1 do
        ignore
          (Khash.insert_untimed table (100 + proc) ~status0:0
             ~make:(fun _ -> ()))
      done;
      let ok = ref true in
      let lookups = ref 0 in
      for proc = 0 to p - 1 do
        Process.spawn eng (fun () ->
            let c = ctx proc in
            if proc land 1 = 0 then
              (* Reader: stable keys are never removed, so every lookup —
                 optimistic or fallen back — must find them. *)
              for _ = 1 to ops do
                let k = Rng.int (Ctx.rng c) stable in
                incr lookups;
                (match Khash.lookup table c k with
                | Some e -> if e.Khash.key <> k then ok := false
                | None -> ok := false);
                Ctx.work c 5
              done
            else begin
              (* Churner: delete and re-insert its own key, driving the
                 shard's seqlock through writer sections. *)
              let k = 100 + proc in
              for _ = 1 to ops do
                (match Khash.reserve_existing table c k with
                | Some _ -> if not (Khash.remove table c k) then ok := false
                | None -> ok := false);
                ignore (Khash.insert table c k ~make:(fun _ -> ()));
                Ctx.work c 3
              done
            end)
      done;
      Engine.run eng;
      (* Every optimistic lookup is accounted as either a hit or a
         fallback — none silently bypasses the seqlock protocol. *)
      !ok
      && Khash.optimistic_hits table + Khash.optimistic_fallbacks table
         = !lookups)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_sharded_obs_attribution () =
  let r =
    Workloads.Hash_scaling.run ~observe:true
      ~config:
        { Workloads.Hash_scaling.default_config with p = 4; ops = 60 }
      ()
  in
  let classes =
    List.map (fun (row : Obs.row) -> row.Obs.row_class)
      r.Workloads.Hash_scaling.obs_rows
  in
  let shard_classes = List.filter (has_prefix ~prefix:"khash.shard") classes in
  Alcotest.(check bool)
    (Printf.sprintf "per-shard lock classes profiled (got %s)"
       (String.concat "," classes))
    true
    (List.length shard_classes >= 2)

let prop_untimed_matches_inserted =
  QCheck.Test.make ~name:"table contents = inserted \\ removed" ~count:50
    QCheck.(list (pair (int_range 0 50) bool))
    (fun ops ->
      let eng, _, table, ctx = make () in
      let expected = Hashtbl.create 16 in
      Process.spawn eng (fun () ->
          let c = ctx 0 in
          List.iter
            (fun (k, ins) ->
              if ins then begin
                if not (Hashtbl.mem expected k) then begin
                  Hashtbl.replace expected k ();
                  ignore (Khash.insert table c k ~make:(fun _ -> ()))
                end
              end
              else begin
                Hashtbl.remove expected k;
                ignore (Khash.remove table c k)
              end)
            ops);
      Engine.run eng;
      let actual = ref [] in
      Khash.iter_untimed table (fun e -> actual := e.Khash.key :: !actual);
      List.sort compare !actual
      = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) expected []))

let suite =
  [
    Alcotest.test_case "insert and find" `Quick test_insert_and_find;
    Alcotest.test_case "missing key" `Quick test_missing_key;
    Alcotest.test_case "reserve blocks a second reserver" `Quick
      test_reserve_blocks_second_reserver;
    Alcotest.test_case "reserve_or_insert placeholder" `Quick
      test_reserve_or_insert_placeholder;
    Alcotest.test_case "try_reserve_existing fails fast" `Quick
      test_try_reserve_existing_fails_fast;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "search charges probes" `Quick test_search_charges_probes;
    Alcotest.test_case "with_element under all granularities" `Quick
      test_with_element_all_granularities;
    Alcotest.test_case "with_element on a missing key" `Quick
      test_with_element_missing;
    Alcotest.test_case "untimed iteration" `Quick test_untimed_iteration;
    Alcotest.test_case "coarse sections soft-mask interrupts" `Quick
      test_coarse_lock_masks_interrupts;
    Alcotest.test_case "with_element releases locks when the body raises"
      `Quick test_with_element_exception_safety;
    Alcotest.test_case "with_coarse releases lock and mask on raise" `Quick
      test_with_coarse_exception_safety;
    Alcotest.test_case "untimed Fine insert carries the element lock class"
      `Quick test_fine_untimed_insert_vclass;
    Alcotest.test_case "bin_of_key corner keys" `Quick test_bin_of_key_corners;
    Alcotest.test_case "sharded runs attribute waits to shard classes" `Quick
      test_sharded_obs_attribution;
    QCheck_alcotest.to_alcotest prop_bin_of_key_in_range;
    QCheck_alcotest.to_alcotest prop_sharded_mutual_exclusion;
    QCheck_alcotest.to_alcotest prop_sharded_optimistic_lookup_consistency;
    QCheck_alcotest.to_alcotest prop_untimed_matches_inserted;
  ]
