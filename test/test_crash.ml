(* Crash-injection tests: the fail-stop machinery (liveness oracle, fiber
   parking, fail-restart revival), crash-recoverable locking across the
   whole family (qcheck safety under planted mid-CS kills), the
   CRASH-STORM acceptance facts, structure repair (shard locks, seqlock
   roll-forward, orphaned reserve bits), the RPC dead-target outcome, the
   unified kind-tagged fault log, and the zero-cost-when-off identities. *)

open Eventsim
open Hector
open Hkernel
open Locks
open Workloads

(* Every algorithm whose dead holder can be recovered ([Lock.t.recoverable]):
   the whole family except Spin_then_block (blocked waiters belong to the
   scheduler) and Null. Ticket is here despite being non-abortable — its
   waiters run the dead-holder check inside their own spin. *)
let recoverable_algos =
  [
    Lock.Spin { max_backoff_us = 35.0 };
    Lock.Mcs_original;
    Lock.Mcs_h1;
    Lock.Mcs_h2;
    Lock.Mcs_cas;
    Lock.Clh;
    Lock.Ticket;
    Lock.Anderson;
  ]
  @ Lock.all_numa_algos
  (* The morphing lock rides along: a corpse may die inside any shape,
     mid-drain, or between the mode-cell flip and its shape hand-off. *)
  @ [ Lock.adaptive ]

(* -- the fail-stop machinery ------------------------------------------------- *)

let test_fail_stop_parks () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  Alcotest.(check bool) "alive at start" true (Machine.proc_alive machine 3);
  Alcotest.(check int) "not killed" (-1) (Machine.killed_at machine 3);
  let ctx = Ctx.create machine ~proc:3 (Rng.create 1) in
  let progressed = ref 0 in
  Process.spawn eng (fun () ->
      Ctx.work ctx 10;
      incr progressed;
      (* The kill lands inside this sleep; the in-flight operation
         completes, and the *next* operation boundary parks the fiber. *)
      Ctx.work ctx 10_000;
      incr progressed;
      Ctx.work ctx 10;
      incr progressed);
  Engine.schedule eng ~at:50 (fun () -> Machine.kill_proc machine 3);
  Engine.run eng;
  Alcotest.(check int) "parked at the next boundary" 2 !progressed;
  Alcotest.(check bool) "oracle sees the death" false
    (Machine.proc_alive machine 3);
  Alcotest.(check int) "killed_at recorded" 50 (Machine.killed_at machine 3);
  Alcotest.(check int) "crash counted" 1 (Machine.crashes machine)

let test_fail_restart_revives () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let reborn = ref (-1) in
  Machine.set_restart_handler machine (fun proc -> reborn := proc);
  Engine.schedule eng ~at:10 (fun () ->
      Machine.kill_proc ~restart_after:90 machine 5);
  Engine.run eng;
  Alcotest.(check bool) "alive again" true (Machine.proc_alive machine 5);
  Alcotest.(check int) "killed_at cleared" (-1) (Machine.killed_at machine 5);
  Alcotest.(check int) "restart counted" 1 (Machine.restarts machine);
  Alcotest.(check int) "handler told which processor" 5 !reborn

(* -- recoverable locking: qcheck safety under planted mid-CS kills ----------- *)

(* Drive [p] processors through recoverable acquisitions while [n_kills]
   victims each fail-stop once, mid-critical-section, at a random
   iteration. Invariants checked:
   - mutual exclusion modulo recovery: an acquirer may only find the
     previous occupant still "inside" if that occupant is dead;
   - conservation: completed critical sections equal the non-killed
     iterations exactly; every successful acquisition is either a win or
     a planted kill;
   - eventual progress: every survivor's final recoverable acquire goes
     through even when the last corpse still holds the lock (a wedged
     hand-off shows up as an engine deadlock, caught by the wrapper);
   - a fully free lock at quiescence. *)
let crash_stress ~algo ~p ~n_kills ~iters ~hold ~think ~seed =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let lock = Lock.make machine algo in
  assert lock.Lock.recoverable;
  let rng = Rng.create seed in
  let occupant = ref (-1) in
  let excl = ref true in
  let wins = ref 0 in
  let kills = ref 0 in
  let expected_wins = ref 0 in
  for proc = 0 to p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    (* Victims are procs 1..n_kills; proc 0 always survives to drain. *)
    let kill_at =
      if proc >= 1 && proc <= n_kills then 1 + Rng.int rng iters else -1
    in
    expected_wins :=
      !expected_wins + (if kill_at < 0 then iters + 1 else kill_at - 1);
    Process.spawn eng (fun () ->
        let r = Ctx.rng ctx in
        for i = 1 to iters do
          Lock.acquire_recoverable ~check_period:500 lock ctx;
          if !occupant >= 0 && Machine.proc_alive machine !occupant then
            excl := false;
          occupant := proc;
          if hold > 0 then Ctx.work ctx (1 + Rng.int r hold);
          if i = kill_at then begin
            incr kills;
            Machine.kill_proc machine proc;
            (* Parks here: the release below never runs. *)
            Ctx.work ctx 1
          end;
          occupant := -1;
          incr wins;
          lock.Lock.release ctx;
          if think > 0 then Ctx.work ctx (1 + Rng.int r think)
        done;
        (* Eventual progress: survivors must still get in, recovering the
           last corpse themselves if need be. A victim's doomed acquisition
           may land after every survivor's loop has finished (random think
           times), so wait for all planted kills first — only a processor
           that outlives the last corpse can observe the free-at-quiescence
           invariant. Victims never reach this point: they park mid-loop. *)
        while !kills < n_kills do
          Ctx.work ctx 500
        done;
        Lock.acquire_recoverable ~check_period:500 lock ctx;
        if !occupant >= 0 && Machine.proc_alive machine !occupant then
          excl := false;
        occupant := proc;
        Ctx.work ctx 5;
        occupant := -1;
        incr wins;
        lock.Lock.release ctx)
  done;
  Engine.run eng;
  !excl
  && !kills = n_kills
  && !wins = !expected_wins
  && !(lock.Lock.acquires) = !wins + !kills
  && Machine.crashes machine = n_kills
  && lock.Lock.is_free ()

(* Regression: a qcheck-found input where CLH wedged. Two survivors both
   ended up inside [recover]'s free-lock pump (their timed nodes were
   abandoned in the queue) when the last victim acquired and fail-stopped
   mid-critical-section — with every survivor pumping, no one was left to
   run dead-holder recovery, and both pumps spun on the corpse's locked
   node until the event budget blew. The pump is now a dead-aware rescuer
   of last resort (clh.ml [rescue_dead_holder]). *)
let test_clh_pump_rescue () =
  Alcotest.(check bool) "CLH survives the all-survivors-pumping kill" true
    (crash_stress ~algo:Lock.Clh ~p:4 ~n_kills:2 ~iters:6 ~hold:7 ~think:30
       ~seed:4315)

let prop_crash_safety =
  QCheck.Test.make
    ~name:"every recoverable Lock.algo: safety under planted mid-CS kills"
    ~count:25
    QCheck.(
      quad (int_range 2 8) (int_range 1 3) (int_range 0 60) (int_range 0 10000))
    (fun (p, n_kills, hold, seed) ->
      let n_kills = min n_kills (p - 1) in
      List.for_all
        (fun algo ->
          match
            crash_stress ~algo ~p ~n_kills ~iters:6 ~hold ~think:30 ~seed
          with
          | ok -> ok
          | exception _ -> false)
        recoverable_algos)

(* -- the CRASH-STORM acceptance ---------------------------------------------- *)

let test_crash_storm () =
  let config =
    { Crash_storm.default_config with Crash_storm.window_us = 6000.0 }
  in
  List.iter
    (fun algo ->
      let r = Crash_storm.run ~config algo in
      let name = Lock.algo_name algo in
      Alcotest.(check int)
        (name ^ " kills planted")
        config.Crash_storm.n_kills r.Crash_storm.kills;
      Alcotest.(check int)
        (name ^ " observer saw every crash")
        r.Crash_storm.kills r.Crash_storm.obs_crashes;
      Alcotest.(check bool)
        (name ^ " every kill recovered")
        true
        (r.Crash_storm.obs_recoveries >= r.Crash_storm.kills);
      Alcotest.(check bool)
        (name ^ " lockdep legalised the forced releases")
        true
        (r.Crash_storm.lockdep_recoveries >= r.Crash_storm.kills);
      Alcotest.(check int)
        (name ^ " lockdep violations")
        0 r.Crash_storm.lockdep_violations;
      Alcotest.(check bool)
        (name ^ " latency sample per kill")
        true
        (r.Crash_storm.recovery.Measure.n >= r.Crash_storm.kills);
      Alcotest.(check bool)
        (name ^ " kills span clusters")
        true
        (List.length r.Crash_storm.by_cluster >= 2);
      Alcotest.(check bool)
        (name ^ " workers kept acquiring")
        true
        (r.Crash_storm.acquisitions > 0);
      Alcotest.(check bool)
        (name ^ " free after the surviving drain")
        true r.Crash_storm.final_free)
    (Lock.Mcs_h2 :: Lock.Clh :: Lock.Ticket :: Lock.all_numa_algos)

(* -- structure repair: khash shard, seqlock, reserve bits -------------------- *)

let test_khash_crash_repair () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let t =
    Khash.create ~granularity:Khash.Sharded ~nbins:16 ~shards:4
      ~lock_algo:Lock.Mcs_original ~homes:[ 0; 4; 8; 12 ] machine
  in
  for k = 0 to 9 do
    ignore (Khash.insert_untimed t k ~status0:0 ~make:(fun _ -> ()))
  done;
  let key = 5 in
  let s = Khash.shard_of_key t key in
  let rng = Rng.create 3 in
  let ctx1 = Ctx.create machine ~proc:1 (Rng.split rng) in
  let ctx0 = Ctx.create machine ~proc:0 (Rng.split rng) in
  let reserved = ref None in
  Process.spawn eng (fun () ->
      (* Take a reservation, the shard lock, and open a write section —
         then die holding all three. *)
      (match Khash.reserve_existing t ctx1 key with
      | Some e -> reserved := Some e
      | None -> ());
      let lk = Khash.shard_lock t s in
      lk.Lock.acquire ctx1;
      Seqlock.write_begin (Khash.seqlock t s) ctx1;
      Machine.kill_proc machine 1;
      Ctx.work ctx1 1);
  let repairs = ref 0 in
  Process.spawn eng (fun () ->
      Ctx.work ctx0 5_000 (* let processor 1 die first *);
      repairs := Khash.recover t ctx0;
      (* The table is fully usable again: the element re-reserves. *)
      match Khash.reserve_existing t ctx0 key with
      | Some e -> Khash.release_reserve ctx0 e
      | None -> Alcotest.fail "key vanished during repair");
  Engine.run eng;
  Alcotest.(check int) "three repairs: seqlock, shard lock, reserve bit" 3
    !repairs;
  Alcotest.(check bool) "sequence word even again" false
    (Seqlock.write_in_progress (Khash.seqlock t s));
  Alcotest.(check int) "seqlock repair counted" 1
    (Seqlock.repairs (Khash.seqlock t s));
  Alcotest.(check int) "a repair is not a completed write" 0
    (Seqlock.writes (Khash.seqlock t s));
  Alcotest.(check bool) "shard lock free" true
    ((Khash.shard_lock t s).Lock.is_free ());
  match !reserved with
  | None -> Alcotest.fail "reservation never taken"
  | Some e ->
    Alcotest.(check bool) "reserve bit swept" false
      (Reserve.write_reserved e.Khash.status);
    Alcotest.(check int) "owner bookkeeping cleared" (-1) e.Khash.reserver

let test_repair_noops_on_the_living () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let sq = Seqlock.create machine () in
  let status = Machine.alloc machine ~label:"h0" ~home:0 0 in
  let rng = Rng.create 9 in
  let ctx0 = Ctx.create machine ~proc:0 (Rng.split rng) in
  let ctx1 = Ctx.create machine ~proc:1 (Rng.split rng) in
  Process.spawn eng (fun () ->
      ignore (Reserve.try_reserve ctx0 status);
      Seqlock.write_begin sq ctx0;
      Ctx.work ctx0 1_000;
      Seqlock.write_end sq ctx0);
  Process.spawn eng (fun () ->
      Ctx.work ctx1 100;
      (* A live writer mid-section is not a crash. *)
      Alcotest.(check bool) "no roll on a live writer" false
        (Seqlock.recover_write sq ctx1);
      Alcotest.(check bool) "no sweep of a live owner" false
        (Reserve.clear_orphan ctx1 status ~dead:0);
      Ctx.work ctx1 2_000;
      (* After a clean write_end there is nothing to roll. *)
      Alcotest.(check bool) "no roll after clean end" false
        (Seqlock.recover_write sq ctx1);
      Alcotest.(check bool) "no sweep without an owner" false
        (Reserve.clear_orphan ctx1 status ~dead:(-1)));
  Engine.run eng;
  Alcotest.(check int) "no repairs counted" 0 (Seqlock.repairs sq);
  Alcotest.(check bool) "reservation intact" true (Reserve.write_reserved status)

(* -- RPC: dead targets are a distinct, terminal outcome ---------------------- *)

let test_rpc_dead_target_upfront () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let rng = Rng.create 11 in
  let ctxs =
    Array.init 16 (fun p -> Ctx.create machine ~proc:p (Rng.split rng))
  in
  let rpc = Rpc.create machine ctxs Costs.default in
  Machine.kill_proc machine 8;
  let got = ref None in
  Process.spawn eng (fun () ->
      got := Some (Rpc.call rpc ctxs.(0) ~target:8 (fun _ -> Rpc.Ok 1)));
  Engine.run eng;
  Alcotest.(check bool) "refused up front" true (!got = Some Rpc.Dead_target);
  Alcotest.(check int) "counted" 1 (Rpc.dead_targets rpc)

let test_rpc_dead_target_on_resend () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let rng = Rng.create 12 in
  let ctxs =
    Array.init 16 (fun p -> Ctx.create machine ~proc:p (Rng.split rng))
  in
  let rpc = Rpc.create machine ctxs Costs.default in
  let plan = Fault.create { Fault.disabled with reply_timeout = 2_000 } in
  Rpc.set_fault_plan rpc (Some plan);
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(8));
  let got = ref None in
  Process.spawn eng (fun () ->
      got :=
        Some
          (Rpc.call rpc ctxs.(0) ~target:8 (fun tc ->
               (* The server dies mid-service: no reply ever comes. The
                  caller's resend finds the corpse and gives up with the
                  terminal outcome rather than resending forever. *)
               Ctx.work tc 50;
               Machine.kill_proc machine 8;
               Ctx.work tc 1;
               Rpc.Ok 1)));
  Engine.run eng;
  Alcotest.(check bool) "resend detected the corpse" true
    (!got = Some Rpc.Dead_target);
  Alcotest.(check int) "counted once" 1 (Rpc.dead_targets rpc)

(* -- the unified fault log --------------------------------------------------- *)

let test_unified_fault_log () =
  let t =
    Fault.create
      { Fault.disabled with stall_every = 100; stall_cycles = 5 }
  in
  ignore (Fault.draw_stall t ~site:2 ~now:100);
  Fault.record_crash t ~proc:3 ~now:250;
  Fault.record_restart t ~proc:3 ~now:400;
  ignore (Fault.draw_stall t ~site:2 ~now:500);
  let log = Fault.log t in
  Alcotest.(check (list (pair string int)))
    "chronological, every kind tagged"
    [ ("stall", 100); ("crash", 250); ("restart", 400); ("stall", 500) ]
    (List.map
       (fun (e : Fault.event) -> (Fault.kind_name e.Fault.kind, e.Fault.time))
       log);
  Alcotest.(check (list int))
    "where: site / processor" [ 2; 3; 3; 2 ]
    (List.map (fun (e : Fault.event) -> e.Fault.where) log);
  Alcotest.(check int) "crash counted" 1 (Fault.crashes_injected t);
  Alcotest.(check int) "restart counted" 1 (Fault.restarts_injected t);
  (* A restart undoes adversity rather than adding it. *)
  Alcotest.(check int) "total excludes restarts" 3 (Fault.total_injected t)

(* -- zero cost when off ------------------------------------------------------ *)

(* The crash machinery must not perturb existing plans: a crash schedule
   makes no Rng draws, and [draw_crash] with a zero rate makes none
   either, so the stall stream replays bit-for-bit. *)
let test_crash_plan_rng_identity () =
  let base =
    { Fault.disabled with seed = 5; stall_rate = 0.5; stall_cycles = 10 }
  in
  let trace ?(interleave_crash_draws = false) cfg =
    let t = Fault.create cfg in
    List.init 200 (fun i ->
        if interleave_crash_draws then ignore (Fault.draw_crash t);
        Fault.draw_stall t ~site:0 ~now:i <> None)
  in
  Alcotest.(check bool) "a crash schedule makes no draws" true
    (trace base = trace { base with crash_at = [ (50, 3) ] });
  Alcotest.(check bool) "zero-rate crash draws make no draws" true
    (trace base = trace ~interleave_crash_draws:true base)

let suite =
  [
    Alcotest.test_case "fail-stop parks the fiber, oracle reports it" `Quick
      test_fail_stop_parks;
    Alcotest.test_case "fail-restart revives through the handler" `Quick
      test_fail_restart_revives;
    QCheck_alcotest.to_alcotest prop_crash_safety;
    Alcotest.test_case "CLH pump rescues a dead holder" `Quick
      test_clh_pump_rescue;
    Alcotest.test_case "crash storm: recovery conservation per algorithm"
      `Quick test_crash_storm;
    Alcotest.test_case "khash repair: shard lock, seqlock, reserve bit" `Quick
      test_khash_crash_repair;
    Alcotest.test_case "repair no-ops on the living" `Quick
      test_repair_noops_on_the_living;
    Alcotest.test_case "RPC dead target refused up front" `Quick
      test_rpc_dead_target_upfront;
    Alcotest.test_case "RPC dead target detected on resend" `Quick
      test_rpc_dead_target_on_resend;
    Alcotest.test_case "unified kind-tagged fault log" `Quick
      test_unified_fault_log;
    Alcotest.test_case "crash machinery makes no Rng draws when off" `Quick
      test_crash_plan_rng_identity;
  ]
