(* The domain pool and the parallel bench matrix's determinism pin.

   The load-bearing invariant of the whole parallel harness is at the
   bottom: [Bench_json.document ~jobs:4] must serialise to exactly the
   same bytes as the sequential document, including multi-cell
   experiments that are split per-algorithm and reassembled. *)

open Hurricane

let test_map_identity () =
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int))
    "jobs=1 is List.map" (List.map succ xs)
    (Par.map ~jobs:1 succ xs);
  Alcotest.(check (list int))
    "jobs=4 preserves input order" (List.map succ xs)
    (Par.map ~jobs:4 succ xs)

let test_map_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Par.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "single" [ 8 ] (Par.map ~jobs:4 succ [ 7 ])

let test_map_more_jobs_than_items () =
  Alcotest.(check (list int))
    "jobs > n" [ 2; 3; 4 ]
    (Par.map ~jobs:16 succ [ 1; 2; 3 ])

exception Boom of int

let test_map_raises_earliest () =
  (* Two failing inputs: the exception re-raised must belong to the
     earliest one in input order, regardless of completion order. *)
  let f x = if x mod 3 = 0 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Par.map ~jobs f [ 1; 2; 3; 4; 5; 6 ] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
        Alcotest.(check int)
          (Printf.sprintf "earliest failure wins (jobs=%d)" jobs)
          3 x)
    [ 1; 4 ]

let test_document_deterministic () =
  (* Byte-identity of the parallel export: includes fig5a (a multi-cell
     experiment split per lock algorithm) next to single-cell
     experiments, so reassembly order is actually exercised. *)
  let names = [ "fig4"; "fig5a"; "constants" ] in
  let doc jobs =
    Bench_json.document ~procs:[ 2; 4 ] ~jobs ~names ()
  in
  let seq = Json.to_string (doc 1) in
  let par = Json.to_string (doc 4) in
  Alcotest.(check bool) "parallel export is byte-identical" true (seq = par)

let suite =
  [
    Alcotest.test_case "map is List.map in order" `Quick test_map_identity;
    Alcotest.test_case "map: empty and singleton" `Quick
      test_map_empty_and_single;
    Alcotest.test_case "map: more jobs than items" `Quick
      test_map_more_jobs_than_items;
    Alcotest.test_case "map re-raises earliest failure" `Quick
      test_map_raises_earliest;
    Alcotest.test_case "document --jobs 4 is byte-identical" `Slow
      test_document_deterministic;
  ]
