(* Tests for the hierarchical-clustering layout. *)

open Hkernel

let test_even_partition () =
  let c = Clustering.create ~n_procs:16 ~cluster_size:4 in
  Alcotest.(check int) "clusters" 4 (Clustering.n_clusters c);
  Alcotest.(check (list int)) "cluster 0" [ 0; 1; 2; 3 ]
    (Clustering.procs_of_cluster c 0);
  Alcotest.(check (list int)) "cluster 3" [ 12; 13; 14; 15 ]
    (Clustering.procs_of_cluster c 3);
  Alcotest.(check int) "proc 6 -> cluster 1" 1 (Clustering.cluster_of_proc c 6);
  Alcotest.(check int) "index in cluster" 2 (Clustering.index_in_cluster c 6)

let test_single_cluster () =
  let c = Clustering.create ~n_procs:16 ~cluster_size:16 in
  Alcotest.(check int) "one cluster" 1 (Clustering.n_clusters c);
  Alcotest.(check int) "all 16" 16 (Clustering.size_of_cluster c 0)

let test_singleton_clusters () =
  let c = Clustering.create ~n_procs:16 ~cluster_size:1 in
  Alcotest.(check int) "16 clusters" 16 (Clustering.n_clusters c);
  Alcotest.(check (list int)) "cluster 7" [ 7 ] (Clustering.procs_of_cluster c 7)

let test_uneven_partition () =
  let c = Clustering.create ~n_procs:16 ~cluster_size:5 in
  Alcotest.(check int) "ceil(16/5)" 4 (Clustering.n_clusters c);
  Alcotest.(check int) "last cluster has the remainder" 1
    (Clustering.size_of_cluster c 3)

let test_every_proc_covered_once () =
  List.iter
    (fun size ->
      let c = Clustering.create ~n_procs:16 ~cluster_size:size in
      let all =
        List.concat_map
          (fun cl -> Clustering.procs_of_cluster c cl)
          (List.init (Clustering.n_clusters c) (fun i -> i))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "partition for size %d" size)
        (List.init 16 (fun i -> i))
        (List.sort compare all))
    [ 1; 2; 3; 4; 5; 8; 16 ]

let test_rpc_target_ith_to_ith () =
  let c = Clustering.create ~n_procs:16 ~cluster_size:4 in
  (* Processor 6 is index 2 of cluster 1; its RPCs to cluster 3 must go to
     index 2 of cluster 3 = processor 14. *)
  Alcotest.(check int) "i-th to i-th" 14
    (Clustering.rpc_target c ~from:6 ~target_cluster:3);
  Alcotest.(check int) "index 0" 12
    (Clustering.rpc_target c ~from:4 ~target_cluster:3)

let test_rpc_target_wraps_on_smaller_cluster () =
  let c = Clustering.create ~n_procs:16 ~cluster_size:5 in
  (* Cluster 3 has one processor (15); any index maps onto it. *)
  Alcotest.(check int) "wraps" 15
    (Clustering.rpc_target c ~from:4 ~target_cluster:3)

let test_home_in_cluster () =
  let c = Clustering.create ~n_procs:16 ~cluster_size:4 in
  Alcotest.(check int) "salt 0" 4 (Clustering.home_in_cluster c ~cluster:1 ~salt:0);
  Alcotest.(check int) "salt 5 wraps" 5
    (Clustering.home_in_cluster c ~cluster:1 ~salt:5)

let test_rpc_target_uneven_tail () =
  (* 16 procs in clusters of 3: five full clusters plus a singleton tail. *)
  let c = Clustering.create ~n_procs:16 ~cluster_size:3 in
  (* Processor 5 is index 2 of cluster 1; the tail {15} absorbs any index. *)
  Alcotest.(check int) "wraps into the singleton tail" 15
    (Clustering.rpc_target c ~from:5 ~target_cluster:5);
  (* Index 1 fits in the full cluster 4 = {12; 13; 14}. *)
  Alcotest.(check int) "index preserved when it fits" 13
    (Clustering.rpc_target c ~from:4 ~target_cluster:4);
  (* From the tail itself: index 0 everywhere. *)
  Alcotest.(check int) "tail maps to index 0" 0
    (Clustering.rpc_target c ~from:15 ~target_cluster:0)

let test_home_in_cluster_negative_salt () =
  let c = Clustering.create ~n_procs:16 ~cluster_size:4 in
  (* Euclidean wrap: a negative salt can never index outside the cluster. *)
  Alcotest.(check int) "salt -1" 7
    (Clustering.home_in_cluster c ~cluster:1 ~salt:(-1));
  Alcotest.(check int) "salt -4" 4
    (Clustering.home_in_cluster c ~cluster:1 ~salt:(-4));
  (* [abs min_int] is negative, so the old [abs salt mod len] produced a
     negative index here; min_int is a multiple of 4, so index 0. *)
  Alcotest.(check int) "salt min_int" 4
    (Clustering.home_in_cluster c ~cluster:1 ~salt:min_int)

let test_home_in_cluster_uneven_tail () =
  let c = Clustering.create ~n_procs:16 ~cluster_size:5 in
  List.iter
    (fun salt ->
      Alcotest.(check int) "singleton tail homes everything" 15
        (Clustering.home_in_cluster c ~cluster:3 ~salt))
    [ 0; 1; -1; 7; min_int; max_int ]

let test_bad_arguments () =
  Alcotest.(check bool) "size 0" true
    (match Clustering.create ~n_procs:16 ~cluster_size:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "size > procs" true
    (match Clustering.create ~n_procs:16 ~cluster_size:17 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let c = Clustering.create ~n_procs:16 ~cluster_size:4 in
  Alcotest.(check bool) "bad proc" true
    (match Clustering.cluster_of_proc c 16 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_cluster_of_proc_consistent =
  QCheck.Test.make ~name:"proc belongs to the cluster that lists it" ~count:100
    QCheck.(pair (int_range 1 16) (int_range 0 15))
    (fun (size, p) ->
      let c = Clustering.create ~n_procs:16 ~cluster_size:size in
      let cl = Clustering.cluster_of_proc c p in
      List.mem p (Clustering.procs_of_cluster c cl))

let prop_home_in_cluster_total =
  QCheck.Test.make ~name:"home_in_cluster lands in its cluster for any salt"
    ~count:200
    QCheck.(triple (int_range 1 16) (int_range 0 15) int)
    (fun (size, cl, salt) ->
      let c = Clustering.create ~n_procs:16 ~cluster_size:size in
      let cl = cl mod Clustering.n_clusters c in
      List.mem
        (Clustering.home_in_cluster c ~cluster:cl ~salt)
        (Clustering.procs_of_cluster c cl))

let suite =
  [
    Alcotest.test_case "even partition" `Quick test_even_partition;
    Alcotest.test_case "single cluster" `Quick test_single_cluster;
    Alcotest.test_case "singleton clusters" `Quick test_singleton_clusters;
    Alcotest.test_case "uneven partition" `Quick test_uneven_partition;
    Alcotest.test_case "partition covers all processors" `Quick
      test_every_proc_covered_once;
    Alcotest.test_case "RPC targets i-th to i-th" `Quick
      test_rpc_target_ith_to_ith;
    Alcotest.test_case "RPC target wraps on small clusters" `Quick
      test_rpc_target_wraps_on_smaller_cluster;
    Alcotest.test_case "home_in_cluster" `Quick test_home_in_cluster;
    Alcotest.test_case "RPC target with uneven tail cluster" `Quick
      test_rpc_target_uneven_tail;
    Alcotest.test_case "home_in_cluster negative and min_int salt" `Quick
      test_home_in_cluster_negative_salt;
    Alcotest.test_case "home_in_cluster uneven tail" `Quick
      test_home_in_cluster_uneven_tail;
    Alcotest.test_case "bad arguments rejected" `Quick test_bad_arguments;
    QCheck_alcotest.to_alcotest prop_cluster_of_proc_consistent;
    QCheck_alcotest.to_alcotest prop_home_in_cluster_total;
  ]
