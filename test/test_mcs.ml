(* Tests for the MCS distributed lock: all three variants, the queue-repair
   protocol, FIFO fairness, TryLock variants and abandoned-node garbage
   collection. Property tests explore random schedules (processor counts,
   critical-section lengths, think times) and check the safety and liveness
   invariants on each. *)

open Eventsim
open Hector
open Locks

let make ?(cfg = Config.hector) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let ctx p = Ctx.create machine ~proc:p (Rng.create (300 + p)) in
  (eng, machine, ctx)

let variants = [ Mcs.Original; Mcs.H1; Mcs.H2 ]

(* Drive [p] processors through [iters] acquire/work/release cycles and
   check mutual exclusion plus completion. Returns the lock for further
   checks. *)
let stress ?(cfg = Config.hector) ~variant ~p ~iters ~hold ~think ~seed () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let lock = Mcs.create ~variant ~home:0 machine in
  let inside = ref 0 and peak = ref 0 and completed = ref 0 in
  let rng = Rng.create seed in
  for proc = 0 to p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        for _ = 1 to iters do
          Mcs.acquire lock ctx;
          incr inside;
          peak := max !peak !inside;
          if hold > 0 then Ctx.work ctx hold;
          decr inside;
          Mcs.release lock ctx;
          if think > 0 then
            Ctx.work ctx (1 + Rng.int (Ctx.rng ctx) think)
        done;
        completed := !completed + iters)
  done;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !peak;
  Alcotest.(check int) "all iterations completed" (p * iters) !completed;
  Alcotest.(check bool) "free at quiescence" true (Mcs.is_free lock);
  lock

let test_uncontended_basic () =
  List.iter
    (fun variant -> ignore (stress ~variant ~p:1 ~iters:50 ~hold:0 ~think:0 ~seed:1 ()))
    variants

let test_contended_all_variants () =
  List.iter
    (fun variant ->
      let lock = stress ~variant ~p:8 ~iters:30 ~hold:40 ~think:20 ~seed:2 () in
      Alcotest.(check int)
        (Mcs.variant_name variant ^ " acquisitions")
        240 (Mcs.acquisitions lock))
    variants

let test_h2_repairs_under_contention () =
  let lock = stress ~variant:Mcs.H2 ~p:8 ~iters:30 ~hold:0 ~think:0 ~seed:3 () in
  (* H2 skips the successor check, so contended releases must repair. *)
  Alcotest.(check bool) "repairs happened" true (Mcs.repairs lock > 0)

let test_fifo_fairness () =
  (* With long holds, waiters enqueue in a known order and must be served
     in that order. *)
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H1 ~home:0 machine in
  let order = ref [] in
  (* Proc 0 takes the lock first and holds it long enough for 1..5 to
     enqueue at staggered times. *)
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Mcs.acquire lock c;
      Ctx.work c 2000;
      Mcs.release lock c);
  for p = 1 to 5 do
    Process.spawn eng (fun () ->
        let c = ctx p in
        Process.pause eng (100 * p);
        Mcs.acquire lock c;
        order := p :: !order;
        Ctx.work c 50;
        Mcs.release lock c)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO service order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_holder_tracking () =
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
  Process.spawn eng (fun () ->
      let c = ctx 4 in
      Alcotest.(check (option int)) "nobody" None (Mcs.holder_proc lock);
      Mcs.acquire lock c;
      Alcotest.(check (option int)) "holder is 4" (Some 4) (Mcs.holder_proc lock);
      Mcs.release lock c;
      Alcotest.(check (option int)) "free" None (Mcs.holder_proc lock));
  Engine.run eng

let test_trylock_v1 () =
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 ~track_in_use:true machine in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      (* Free lock: v1 acquires. *)
      Alcotest.(check bool) "free -> true" true (Mcs.try_acquire_v1 lock c);
      Mcs.release lock c);
  Engine.run eng;
  (* Lock held by proc 1; proc 1's own node is in use, so an "interrupt" on
     proc 1 must refuse, while proc 2 would wait (and get it). *)
  let eng2 = Engine.create () in
  let machine2 = Machine.create eng2 Config.hector in
  let lock2 = Mcs.create ~variant:Mcs.H2 ~home:0 ~track_in_use:true machine2 in
  let c1 = Ctx.create machine2 ~proc:1 (Rng.create 1) in
  let c2 = Ctx.create machine2 ~proc:2 (Rng.create 2) in
  Process.spawn eng2 (fun () ->
      Mcs.acquire lock2 c1;
      (* Interrupt handler on the holder's processor. *)
      Alcotest.(check bool) "holder's proc -> refused" false
        (Mcs.try_acquire_v1 lock2 c1);
      Mcs.release lock2 c1);
  Process.spawn eng2 (fun () ->
      Process.pause eng2 5;
      Alcotest.(check bool) "other proc -> waits and wins" true
        (Mcs.try_acquire_v1 lock2 c2);
      Mcs.release lock2 c2);
  Engine.run eng2;
  Alcotest.(check bool) "v1 failure counted" true (Mcs.try_failures lock2 > 0)

let test_trylock_v2_free_lock () =
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Alcotest.(check bool) "free -> acquired" true (Mcs.try_acquire_v2 lock c);
      Alcotest.(check bool) "held" true (Mcs.is_held lock);
      Mcs.release lock c;
      Alcotest.(check bool) "free" true (Mcs.is_free lock));
  Engine.run eng

let test_trylock_v2_abandons_and_gc () =
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
  let tried = ref false in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Mcs.acquire lock c;
      Ctx.work c 500;
      Mcs.release lock c);
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Process.pause eng 50;
      (* Held: the attempt fails, leaving the interrupt node queued. *)
      Alcotest.(check bool) "held -> failed" false (Mcs.try_acquire_v2 lock c);
      tried := true;
      (* A retry before GC must refuse immediately (node still queued). *)
      Alcotest.(check bool) "node busy -> refused" false
        (Mcs.try_acquire_v2 lock c));
  Engine.run eng;
  Alcotest.(check bool) "attempt ran" true !tried;
  Alcotest.(check int) "abandoned node collected" 1 (Mcs.gc_count lock);
  Alcotest.(check bool) "lock free after GC" true (Mcs.is_free lock)

let test_trylock_v2_node_reusable_after_gc () =
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
  Process.spawn eng (fun () ->
      let c0 = ctx 0 in
      Mcs.acquire lock c0;
      Ctx.work c0 300;
      Mcs.release lock c0);
  Process.spawn eng (fun () ->
      let c1 = ctx 1 in
      Process.pause eng 50;
      Alcotest.(check bool) "fails while held" false (Mcs.try_acquire_v2 lock c1);
      (* Wait for the holder to release (which GCs the node). *)
      Process.pause eng 1000;
      Alcotest.(check bool) "node reusable, lock free" true
        (Mcs.try_acquire_v2 lock c1);
      Mcs.release lock c1);
  Engine.run eng

let test_timed_acquire_uncontended () =
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Alcotest.(check bool) "free -> acquired" true
        (Mcs.acquire_with_timeout lock c ~timeout:100);
      Alcotest.(check bool) "held" true (Mcs.is_held lock);
      Mcs.release lock c;
      Alcotest.(check bool) "free" true (Mcs.is_free lock));
  Engine.run eng;
  Alcotest.(check int) "no timeouts" 0 (Mcs.timeouts lock)

let test_timed_acquire_zero_deadline () =
  (* A zero or negative timeout is an already-expired deadline: it must
     fail immediately with no effect on the lock — no enqueue, no memory
     traffic, no verification events — even when the lock is free and an
     enqueue would have won. Only the timeouts counter advances. *)
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      let t0 = Machine.now machine in
      Alcotest.(check bool) "timeout 0 on a free lock -> false" false
        (Mcs.acquire_with_timeout lock c ~timeout:0);
      Alcotest.(check bool) "negative timeout -> false" false
        (Mcs.acquire_with_timeout lock c ~timeout:(-100));
      Alcotest.(check int) "no simulated time consumed" t0 (Machine.now machine);
      Alcotest.(check bool) "lock untouched" true (Mcs.is_free lock);
      (* The refusals left no queue state behind: a real attempt wins. *)
      Alcotest.(check bool) "node unharmed, lock acquirable" true
        (Mcs.acquire_with_timeout lock c ~timeout:100);
      Mcs.release lock c);
  Engine.run eng;
  Alcotest.(check int) "both refusals counted" 2 (Mcs.timeouts lock);
  Alcotest.(check int) "nothing to collect" 0 (Mcs.gc_count lock);
  Alcotest.(check bool) "free" true (Mcs.is_free lock)

let test_timed_acquire_within_deadline () =
  (* The holder releases well before the deadline: the waiter queues,
     spins, and wins like a plain acquire. *)
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
  let won_at = ref 0 in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Mcs.acquire lock c;
      Ctx.work c 300;
      Mcs.release lock c);
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Process.pause eng 50;
      Alcotest.(check bool) "waits and wins" true
        (Mcs.acquire_with_timeout lock c ~timeout:5000);
      won_at := Machine.now machine;
      Mcs.release lock c);
  Engine.run eng;
  Alcotest.(check bool) "won after the holder released" true (!won_at >= 300);
  Alcotest.(check int) "no timeouts" 0 (Mcs.timeouts lock);
  Alcotest.(check int) "nothing to collect" 0 (Mcs.gc_count lock);
  Alcotest.(check bool) "free" true (Mcs.is_free lock)

let test_timed_acquire_expires_and_gc () =
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Mcs.acquire lock c;
      Ctx.work c 2000;
      Mcs.release lock c);
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Process.pause eng 50;
      Alcotest.(check bool) "deadline expires" false
        (Mcs.acquire_with_timeout lock c ~timeout:200);
      (* The abandoned node is still queued: a retry before GC must
         fast-fail without enqueueing a second node. *)
      let failures = Mcs.try_failures lock in
      Alcotest.(check bool) "node busy -> refused" false
        (Mcs.acquire_with_timeout lock c ~timeout:200);
      Alcotest.(check int) "fast-fail counted" (failures + 1)
        (Mcs.try_failures lock);
      (* Wait out the holder: release collects the abandoned node. *)
      Process.pause eng 5000;
      Alcotest.(check bool) "node reusable after GC" true
        (Mcs.acquire_with_timeout lock c ~timeout:200);
      Mcs.release lock c);
  Engine.run eng;
  Alcotest.(check int) "one deadline expiry" 1 (Mcs.timeouts lock);
  Alcotest.(check int) "abandoned node collected" 1 (Mcs.gc_count lock);
  Alcotest.(check bool) "free" true (Mcs.is_free lock)

let test_timed_acquire_two_waiters_expire () =
  let eng, machine, ctx = make () in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Mcs.acquire lock c;
      Ctx.work c 3000;
      Mcs.release lock c);
  for p = 1 to 2 do
    Process.spawn eng (fun () ->
        let c = ctx p in
        Process.pause eng (50 * p);
        Alcotest.(check bool)
          (Printf.sprintf "waiter %d times out" p)
          false
          (Mcs.acquire_with_timeout lock c ~timeout:300))
  done;
  Engine.run eng;
  Alcotest.(check int) "both expiries counted" 2 (Mcs.timeouts lock);
  Alcotest.(check int) "both nodes collected" 2 (Mcs.gc_count lock);
  Alcotest.(check bool) "free" true (Mcs.is_free lock)

let test_cas_release () =
  let eng = Engine.create () in
  let machine = Machine.create eng (Config.with_cas Config.hector) in
  let lock = Mcs.create ~variant:Mcs.H2 ~home:0 ~use_cas_release:true machine in
  let inside = ref 0 and peak = ref 0 in
  let rng = Rng.create 4 in
  for proc = 0 to 5 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        for _ = 1 to 20 do
          Mcs.acquire lock ctx;
          incr inside;
          peak := max !peak !inside;
          Ctx.work ctx 25;
          decr inside;
          Mcs.release lock ctx
        done)
  done;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion with CAS release" 1 !peak;
  Alcotest.(check int) "no repairs with CAS" 0 (Mcs.repairs lock);
  Alcotest.(check bool) "free" true (Mcs.is_free lock)

(* Random-schedule property: mutual exclusion and completion hold for every
   variant under arbitrary small schedules. *)
let prop_safety =
  QCheck.Test.make ~name:"MCS safety under random schedules" ~count:60
    QCheck.(
      quad (int_range 1 10) (int_range 0 80) (int_range 0 60) (int_range 0 10000))
    (fun (p, hold, think, seed) ->
      List.for_all
        (fun variant ->
          match
            stress ~variant ~p ~iters:8 ~hold ~think ~seed ()
          with
          | _ -> true
          | exception _ -> false)
        variants)

(* Determinism: the same seed gives the same simulated end time. *)
let test_determinism () =
  let run () =
    let eng = Engine.create () in
    let machine = Machine.create eng Config.hector in
    let lock = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
    let rng = Rng.create 77 in
    for proc = 0 to 7 do
      let ctx = Ctx.create machine ~proc (Rng.split rng) in
      Process.spawn eng (fun () ->
          for _ = 1 to 20 do
            Mcs.acquire lock ctx;
            Ctx.work ctx 30;
            Mcs.release lock ctx
          done)
    done;
    Engine.run eng;
    Engine.now eng
  in
  Alcotest.(check int) "bit-for-bit repeatable" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "uncontended, all variants" `Quick test_uncontended_basic;
    Alcotest.test_case "contended, all variants" `Quick
      test_contended_all_variants;
    Alcotest.test_case "H2 repairs the queue" `Quick
      test_h2_repairs_under_contention;
    Alcotest.test_case "FIFO fairness" `Quick test_fifo_fairness;
    Alcotest.test_case "holder tracking" `Quick test_holder_tracking;
    Alcotest.test_case "TryLock v1 semantics" `Quick test_trylock_v1;
    Alcotest.test_case "TryLock v2 on a free lock" `Quick
      test_trylock_v2_free_lock;
    Alcotest.test_case "TryLock v2 abandons; release GCs" `Quick
      test_trylock_v2_abandons_and_gc;
    Alcotest.test_case "TryLock v2 node reusable after GC" `Quick
      test_trylock_v2_node_reusable_after_gc;
    Alcotest.test_case "timed acquire: zero deadline is inert" `Quick
      test_timed_acquire_zero_deadline;
    Alcotest.test_case "timed acquire: uncontended" `Quick
      test_timed_acquire_uncontended;
    Alcotest.test_case "timed acquire: wins within the deadline" `Quick
      test_timed_acquire_within_deadline;
    Alcotest.test_case "timed acquire: expiry, fast-fail, GC, reuse" `Quick
      test_timed_acquire_expires_and_gc;
    Alcotest.test_case "timed acquire: two expired waiters collected" `Quick
      test_timed_acquire_two_waiters_expire;
    Alcotest.test_case "CAS release (Section 5.2)" `Quick test_cas_release;
    QCheck_alcotest.to_alcotest prop_safety;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
