(* Tests for the statistics accumulator. *)

open Eventsim

let with_samples samples =
  let s = Stat.create "t" in
  List.iter (Stat.add s) samples;
  s

let test_empty () =
  let s = Stat.create "t" in
  Alcotest.(check int) "count" 0 (Stat.count s);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stat.mean s);
  Alcotest.(check int) "median" 0 (Stat.median s);
  Alcotest.(check (float 0.0)) "tail" 0.0 (Stat.fraction_above s 5)

let test_basic_moments () =
  let s = with_samples [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "count" 5 (Stat.count s);
  Alcotest.(check (float 0.001)) "mean" 3.0 (Stat.mean s);
  Alcotest.(check int) "min" 1 (Stat.min_value s);
  Alcotest.(check int) "max" 5 (Stat.max_value s);
  Alcotest.(check int) "median" 3 (Stat.median s);
  Alcotest.(check (float 0.001)) "stddev" (sqrt 2.5) (Stat.stddev s)

let test_percentiles () =
  let s = with_samples (List.init 100 (fun i -> i + 1)) in
  Alcotest.(check int) "p50" 50 (Stat.percentile s 0.5);
  Alcotest.(check int) "p90" 90 (Stat.percentile s 0.9);
  Alcotest.(check int) "p99" 99 (Stat.percentile s 0.99);
  Alcotest.(check int) "p100" 100 (Stat.percentile s 1.0);
  Alcotest.(check int) "p0 clamps" 1 (Stat.percentile s 0.0);
  Alcotest.(check int) "q>1 clamps" 100 (Stat.percentile s 2.0)

let test_percentile_after_more_adds () =
  (* Percentile sorts internally; adding afterwards must still work. *)
  let s = with_samples [ 5; 1; 3 ] in
  Alcotest.(check int) "median" 3 (Stat.median s);
  Stat.add s 2;
  Stat.add s 4;
  Alcotest.(check int) "median updated" 3 (Stat.median s);
  Alcotest.(check int) "max" 5 (Stat.max_value s)

let test_percentile_empty () =
  let s = Stat.create "t" in
  Alcotest.(check int) "q=0" 0 (Stat.percentile s 0.0);
  Alcotest.(check int) "q=0.5" 0 (Stat.percentile s 0.5);
  Alcotest.(check int) "q=1" 0 (Stat.percentile s 1.0)

let test_single_sample () =
  let s = with_samples [ 42 ] in
  Alcotest.(check int) "q=0" 42 (Stat.percentile s 0.0);
  Alcotest.(check int) "q=0.5" 42 (Stat.percentile s 0.5);
  Alcotest.(check int) "q=1" 42 (Stat.percentile s 1.0);
  Alcotest.(check int) "min" 42 (Stat.min_value s);
  Alcotest.(check int) "max" 42 (Stat.max_value s);
  Alcotest.(check (float 0.0)) "mean" 42.0 (Stat.mean s);
  Alcotest.(check (float 0.0)) "strictly above below it" 1.0
    (Stat.fraction_above s 41);
  Alcotest.(check (float 0.0)) "not above itself" 0.0 (Stat.fraction_above s 42)

(* The p99.9 column added for the SLO axis: nearest-rank means the figure
   degrades to [max] below 1000 samples and only separates from it at
   n >= 1000 — the small-n behaviour a reader of the column must know. *)
let test_p999_small_counts () =
  let s1 = with_samples [ 7 ] in
  Alcotest.(check int) "n=1: the sample" 7 (Stat.percentile s1 0.999);
  let s2 = with_samples [ 1; 9 ] in
  Alcotest.(check int) "n=2: the max" 9 (Stat.percentile s2 0.999);
  let s10 = with_samples (List.init 10 (fun i -> i + 1)) in
  Alcotest.(check int) "n=10: the max" 10 (Stat.percentile s10 0.999);
  let s999 = with_samples (List.init 999 (fun i -> i + 1)) in
  Alcotest.(check int) "n=999: still the max" 999 (Stat.percentile s999 0.999);
  let s1000 = with_samples (List.init 1000 (fun i -> i + 1)) in
  Alcotest.(check int) "n=1000: first below the max" 999
    (Stat.percentile s1000 0.999);
  Alcotest.(check int) "n=1000: p99 further down" 990
    (Stat.percentile s1000 0.99)

let test_fraction_above () =
  let s = with_samples [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  Alcotest.(check (float 0.001)) "above 8" 0.2 (Stat.fraction_above s 8);
  Alcotest.(check (float 0.001)) "above 0" 1.0 (Stat.fraction_above s 0);
  Alcotest.(check (float 0.001)) "above 10" 0.0 (Stat.fraction_above s 10)

let test_clear () =
  let s = with_samples [ 1; 2; 3 ] in
  Stat.clear s;
  Alcotest.(check int) "count" 0 (Stat.count s);
  Stat.add s 7;
  Alcotest.(check (float 0.001)) "fresh mean" 7.0 (Stat.mean s)

let test_to_list () =
  let s = with_samples [ 3; 1; 2 ] in
  Alcotest.(check (list int)) "insertion order kept" [ 3; 1; 2 ]
    (Stat.to_list s)

let prop_percentile_matches_sorted =
  QCheck.Test.make ~name:"nearest-rank percentile matches sorted list"
    ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (int_bound 1000)) (float_bound_inclusive 1.0))
    (fun (samples, q) ->
      let s = with_samples samples in
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      let idx = max 0 (min (n - 1) (rank - 1)) in
      Stat.percentile s q = List.nth sorted idx)

let prop_mean_bounds =
  QCheck.Test.make ~name:"min <= mean <= max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (int_bound 1000))
    (fun samples ->
      let s = with_samples samples in
      float_of_int (Stat.min_value s) <= Stat.mean s +. 1e-9
      && Stat.mean s <= float_of_int (Stat.max_value s) +. 1e-9)

let suite =
  [
    Alcotest.test_case "empty stat" `Quick test_empty;
    Alcotest.test_case "basic moments" `Quick test_basic_moments;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "percentile after later adds" `Quick
      test_percentile_after_more_adds;
    Alcotest.test_case "percentile of empty stat" `Quick test_percentile_empty;
    Alcotest.test_case "single sample edges" `Quick test_single_sample;
    Alcotest.test_case "p99.9 at small sample counts" `Quick
      test_p999_small_counts;
    Alcotest.test_case "fraction above threshold" `Quick test_fraction_above;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "to_list keeps order" `Quick test_to_list;
    QCheck_alcotest.to_alcotest prop_percentile_matches_sorted;
    QCheck_alcotest.to_alcotest prop_mean_bounds;
  ]
