(* Tests for the fault-injection subsystem: the plan itself (validation,
   determinism, scheduled dosing, hot-spot windows), the injection sites
   (context fault points, machine access path, RPC delay/loss/resend), the
   bounded-retry RPC outcome, and the storm acceptance criterion — under
   injected holder stalls, timeout-capable locking must retain strictly
   more throughput than the unbounded protocol. *)

open Eventsim
open Hector
open Hkernel

let make () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let rng = Rng.create 55 in
  let ctxs =
    Array.init 16 (fun p -> Ctx.create machine ~proc:p (Rng.split rng))
  in
  let rpc = Rpc.create machine ctxs Costs.default in
  (eng, machine, ctxs, rpc)

let rejects cfg =
  match Fault.validate cfg with
  | exception Invalid_argument _ -> true
  | _ -> false

(* -- the plan ---------------------------------------------------------------- *)

let test_validate () =
  let d = Fault.disabled in
  Alcotest.(check bool) "disabled passes" true (Fault.validate d == d);
  Alcotest.(check bool) "rate > 1" true
    (rejects { d with stall_rate = 1.5 });
  Alcotest.(check bool) "negative rate" true
    (rejects { d with rpc_delay_rate = -0.1 });
  Alcotest.(check bool) "negative period" true
    (rejects { d with stall_every = -1 });
  Alcotest.(check bool) "rate and schedule exclusive" true
    (rejects { d with stall_rate = 0.1; stall_every = 100 });
  Alcotest.(check bool) "factor below 1" true
    (rejects { d with hotspot_factor = 0 });
  Alcotest.(check bool) "losses need a reply timeout" true
    (rejects { d with rpc_drop_rate = 0.5 });
  Alcotest.(check bool) "losses with timeout pass" true
    (match
       Fault.validate { d with rpc_drop_rate = 0.5; reply_timeout = 400 }
     with
    | _ -> true
    | exception Invalid_argument _ -> false);
  Alcotest.(check bool) "crash rate > 1" true
    (rejects { d with crash_rate = 1.5 });
  Alcotest.(check bool) "negative crash-schedule time" true
    (rejects { d with crash_at = [ (-5, 0) ] });
  Alcotest.(check bool) "negative crash-schedule processor" true
    (rejects { d with crash_at = [ (100, -1) ] });
  Alcotest.(check bool) "negative restart delay" true
    (rejects { d with restart_after = -1 });
  Alcotest.(check bool) "crash schedule with restart passes" true
    (match
       Fault.validate { d with crash_at = [ (100, 3) ]; restart_after = 50 }
     with
    | _ -> true
    | exception Invalid_argument _ -> false)

let test_draw_determinism () =
  let cfg =
    {
      Fault.disabled with
      seed = 7;
      stall_rate = 0.5;
      stall_cycles = 10;
      rpc_delay_rate = 0.3;
      rpc_delay_cycles = 20;
      rpc_drop_rate = 0.4;
      reply_timeout = 100;
    }
  in
  let trace () =
    let t = Fault.create cfg in
    List.init 100 (fun i ->
        ( Fault.draw_stall t ~site:0 ~now:i,
          Fault.draw_rpc_delay t ~now:i,
          Fault.draw_rpc_drop t ~now:i ))
  in
  Alcotest.(check bool) "same seed, same draws" true (trace () = trace ());
  let t = Fault.create cfg in
  let n =
    List.length
      (List.filter
         (fun i -> Fault.draw_stall t ~site:0 ~now:i <> None)
         (List.init 100 Fun.id))
  in
  Alcotest.(check int) "every draw counted" n (Fault.stalls_injected t)

let test_scheduled_stalls () =
  let t =
    Fault.create { Fault.disabled with stall_every = 100; stall_cycles = 5 }
  in
  let hit now = Fault.draw_stall t ~site:1 ~now <> None in
  Alcotest.(check bool) "before first period" false (hit 0);
  Alcotest.(check bool) "still before" false (hit 99);
  Alcotest.(check bool) "first period boundary" true (hit 100);
  Alcotest.(check bool) "one per period" false (hit 150);
  Alcotest.(check bool) "next period" true (hit 200);
  (* A quiet stretch: the next visit gets one stall, not a burst. *)
  Alcotest.(check bool) "after a gap" true (hit 950);
  Alcotest.(check bool) "no catching up" false (hit 960);
  Alcotest.(check int) "counted" 3 (Fault.stalls_injected t);
  Alcotest.(check int) "per site" 3 (Fault.stalls_at t ~site:1);
  Alcotest.(check (list (pair int int)))
    "chronological log" [ (100, 5); (200, 5); (950, 5) ] (Fault.stall_log t)

(* Scheduled dosing as an executable spec, over arbitrary visit patterns:
   the first visit on or after the arming point doses and re-arms one
   period later, so consecutive doses are at least a period apart, a quiet
   stretch is skipped rather than repaid in a burst, and the total dosage
   is bounded by elapsed time over the period. *)
let prop_stall_every_dosing =
  QCheck.Test.make ~name:"stall_every: period-boundary dosing, no bursts"
    ~count:100
    QCheck.(pair (int_range 1 500) (small_list (int_range 0 10_000)))
    (fun (period, visits) ->
      let visits = List.sort_uniq compare visits in
      let t =
        Fault.create
          { Fault.disabled with stall_every = period; stall_cycles = 7 }
      in
      let next = ref period in
      let spec_ok =
        List.for_all
          (fun now ->
            let expect = now >= !next in
            if expect then next := now + period;
            Fault.draw_stall t ~site:0 ~now <> None = expect)
          visits
      in
      let starts = List.map fst (Fault.stall_log t) in
      let rec spaced = function
        | a :: (b :: _ as rest) -> b - a >= period && spaced rest
        | _ -> true
      in
      let bounded =
        match List.rev visits with
        | [] -> Fault.stalls_injected t = 0
        | last :: _ -> Fault.stalls_injected t <= last / period
      in
      spec_ok
      && spaced starts
      && List.for_all (fun s -> s >= period) starts
      && bounded)

let test_hotspot_window () =
  let t =
    Fault.create
      {
        Fault.disabled with
        hotspot_rate = 1.0;
        hotspot_factor = 4;
        hotspot_cycles = 100;
      }
  in
  Alcotest.(check int) "opens hot" 4 (Fault.hotspot_factor t ~pmm:0 ~now:0);
  Alcotest.(check int) "one window" 1 (Fault.hotspots_injected t);
  Alcotest.(check int) "stays hot" 4 (Fault.hotspot_factor t ~pmm:0 ~now:99);
  Alcotest.(check int) "no re-open while hot" 1 (Fault.hotspots_injected t);
  Alcotest.(check int) "independent PMM" 4 (Fault.hotspot_factor t ~pmm:3 ~now:50);
  Alcotest.(check int) "second window" 2 (Fault.hotspots_injected t);
  Alcotest.(check int)
    "cool after expiry (rate 1: reopens)" 4
    (Fault.hotspot_factor t ~pmm:0 ~now:200);
  Alcotest.(check int) "third window" 3 (Fault.hotspots_injected t)

(* -- injection sites --------------------------------------------------------- *)

let test_fault_point_stalls () =
  let eng, machine, ctxs, _ = make () in
  let plan =
    Fault.create { Fault.disabled with stall_rate = 1.0; stall_cycles = 400 }
  in
  Machine.set_fault_plan machine (Some plan);
  let dt = ref 0 in
  Process.spawn eng (fun () ->
      let t0 = Machine.now machine in
      Ctx.fault_point ctxs.(0) ~site:3;
      dt := Machine.now machine - t0);
  Engine.run eng;
  Alcotest.(check bool) "spent the stall" true (!dt >= 400);
  Alcotest.(check int) "site counter" 1 (Fault.stalls_at plan ~site:3);
  Alcotest.(check int) "other site untouched" 0 (Fault.stalls_at plan ~site:0)

let test_fault_point_free_without_plan () =
  let eng, machine, ctxs, _ = make () in
  Process.spawn eng (fun () ->
      let t0 = Machine.now machine in
      Ctx.fault_point ctxs.(0) ~site:0;
      Alcotest.(check int) "zero cycles" t0 (Machine.now machine));
  Engine.run eng

let test_hotspot_slows_accesses () =
  let run plan =
    let eng, machine, ctxs, _ = make () in
    Machine.set_fault_plan machine plan;
    let cell = Machine.alloc machine ~home:8 0 in
    let dt = ref 0 in
    Process.spawn eng (fun () ->
        let t0 = Machine.now machine in
        for _ = 1 to 20 do
          ignore (Ctx.read ctxs.(0) cell)
        done;
        dt := Machine.now machine - t0);
    Engine.run eng;
    !dt
  in
  let cool = run None in
  let hot =
    run
      (Some
         (Fault.create
            {
              Fault.disabled with
              hotspot_rate = 1.0;
              hotspot_factor = 8;
              hotspot_cycles = 1_000_000;
            }))
  in
  Alcotest.(check bool)
    (Printf.sprintf "hot remote reads cost more (%d vs %d)" hot cool)
    true
    (hot >= 4 * cool)

let test_await_timeout () =
  let eng, machine, ctxs, _ = make () in
  Process.spawn eng (fun () ->
      let iv = Ivar.create () in
      Engine.schedule eng ~at:800 (fun () -> Ivar.fill eng iv 42);
      let c = ctxs.(0) in
      Alcotest.(check (option int))
        "expires empty" None
        (Ctx.await_timeout c ~timeout:100 iv);
      Alcotest.(check bool) "time advanced" true (Machine.now machine >= 100);
      Alcotest.(check (option int))
        "delivers once filled" (Some 42)
        (Ctx.await_timeout c ~timeout:10_000 iv));
  Engine.run eng

(* -- RPC under faults -------------------------------------------------------- *)

let test_rpc_loss_recovered_by_resend () =
  let eng, _, ctxs, rpc = make () in
  let plan =
    Fault.create
      { Fault.disabled with rpc_drop_rate = 1.0; reply_timeout = 2000 }
  in
  Rpc.set_fault_plan rpc (Some plan);
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(8));
  let service_runs = ref 0 in
  let got = ref None in
  Process.spawn eng (fun () ->
      got :=
        Some
          (Rpc.call rpc ctxs.(0) ~target:8 (fun _ ->
               incr service_runs;
               Rpc.Ok 7)));
  Engine.run eng;
  Alcotest.(check bool) "call completed despite loss" true
    (!got = Some (Rpc.Ok 7));
  Alcotest.(check bool) "resent at least once" true (Rpc.resends rpc >= 1);
  Alcotest.(check int) "exactly one loss per call" 1
    (Fault.rpc_drops_injected plan);
  (* At-least-once: the service ran, and a duplicate whose reply already
     arrived is discarded, so never more than twice here. *)
  Alcotest.(check bool) "service ran once or twice" true
    (!service_runs >= 1 && !service_runs <= 2)

let test_rpc_delay_injected () =
  let run plan =
    let eng, machine, ctxs, rpc = make () in
    Rpc.set_fault_plan rpc plan;
    Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(8));
    let dt = ref 0 in
    Process.spawn eng (fun () ->
        let t0 = Machine.now machine in
        ignore (Rpc.call rpc ctxs.(0) ~target:8 (fun _ -> Rpc.Ok 0));
        dt := Machine.now machine - t0);
    Engine.run eng;
    (!dt, rpc)
  in
  let base, _ = run None in
  let plan =
    Fault.create
      {
        Fault.disabled with
        rpc_delay_rate = 1.0;
        rpc_delay_cycles = 1000;
      }
  in
  let slow, _ = run (Some plan) in
  (* One delay marshalling the request, one before the reply. *)
  Alcotest.(check bool)
    (Printf.sprintf "both legs delayed (%d vs %d)" slow base)
    true
    (slow >= base + 2000);
  Alcotest.(check int) "delays counted" 2 (Fault.rpc_delays_injected plan)

let test_bounded_retry_gives_up () =
  let eng, _, ctxs, rpc = make () in
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(4));
  let releases = ref 0 in
  let got = ref None in
  Process.spawn eng (fun () ->
      got :=
        Some
          (Rpc.call_until_resolved rpc ctxs.(0) ~target:4 ~max_attempts:10
             ~before_retry:(fun () -> incr releases)
             (fun _ -> Rpc.Would_deadlock)));
  Engine.run eng;
  Alcotest.(check bool) "gave up" true (!got = Some Rpc.Gave_up);
  Alcotest.(check int) "one give-up counted" 1 (Rpc.gave_ups rpc);
  Alcotest.(check int) "all attempts retried" 10 (Rpc.retries rpc);
  Alcotest.(check int) "worst attempt recorded" 10 (Rpc.max_attempts_seen rpc);
  Alcotest.(check int) "attempts 9 and 10 past the backoff cap" 2
    (Rpc.backoff_cap_hits rpc);
  (* before_retry also runs before Gave_up: a giving-up caller must not
     keep its reserve bits either. *)
  Alcotest.(check int) "reserves released every attempt" 10 !releases

let test_unbounded_retry_still_resolves () =
  let eng, _, ctxs, rpc = make () in
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(4));
  let failures_left = ref 12 in
  let got = ref None in
  Process.spawn eng (fun () ->
      got :=
        Some
          (Rpc.call_until_resolved rpc ctxs.(0) ~target:4 (fun _ ->
               if !failures_left > 0 then begin
                 decr failures_left;
                 Rpc.Would_deadlock
               end
               else Rpc.Ok 5)));
  Engine.run eng;
  Alcotest.(check bool) "resolved" true (!got = Some (Rpc.Ok 5));
  Alcotest.(check int) "no give-up without a budget" 0 (Rpc.gave_ups rpc);
  Alcotest.(check bool) "cap hits visible past x8" true
    (Rpc.backoff_cap_hits rpc > 0)

(* -- a disabled plan is exactly free ----------------------------------------- *)

let test_disabled_plan_identity () =
  let run plan =
    let eng, machine, ctxs, rpc = make () in
    Machine.set_fault_plan machine plan;
    Rpc.set_fault_plan rpc plan;
    let cell = Machine.alloc machine ~home:9 0 in
    Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(8));
    Process.spawn eng (fun () ->
        let c = ctxs.(0) in
        for _ = 1 to 10 do
          Ctx.fault_point c ~site:0;
          ignore (Ctx.read c cell);
          ignore (Rpc.call rpc c ~target:8 (fun _ -> Rpc.Ok 1))
        done);
    Engine.run eng;
    Machine.now machine
  in
  Alcotest.(check int) "same end time with a disabled plan"
    (run None)
    (run (Some (Fault.create Fault.disabled)))

(* -- acceptance: timeouts beat unbounded waiting under stalls ---------------- *)

let test_storm_timeouts_retain_more () =
  let open Workloads in
  let cycles us = Config.cycles_of_us Config.hector us in
  let fault =
    {
      Fault.disabled with
      seed = 42;
      stall_every = cycles 1000.0;
      stall_cycles = cycles 1000.0;
    }
  in
  let config =
    { Fault_storm.default_config with window_us = 10_000.0; fault = Some fault }
  in
  let plain = Fault_storm.run ~config Fault_storm.No_timeout in
  let timed = Fault_storm.run ~config Fault_storm.Timeout in
  Alcotest.(check bool) "stalls were injected" true
    (plain.Fault_storm.stalls_injected > 0);
  Alcotest.(check bool) "timed mechanism used its timeouts" true
    (timed.Fault_storm.lock_timeouts > 0
    || timed.Fault_storm.reserve_timeouts > 0);
  Alcotest.(check bool)
    (Printf.sprintf "timeouts retain strictly more ops (%d vs %d)"
       timed.Fault_storm.ops plain.Fault_storm.ops)
    true
    (timed.Fault_storm.ops > plain.Fault_storm.ops)

let suite =
  [
    Alcotest.test_case "config validation" `Quick test_validate;
    Alcotest.test_case "draws are deterministic and counted" `Quick
      test_draw_determinism;
    Alcotest.test_case "scheduled stalls: one per period" `Quick
      test_scheduled_stalls;
    QCheck_alcotest.to_alcotest prop_stall_every_dosing;
    Alcotest.test_case "hot-spot windows" `Quick test_hotspot_window;
    Alcotest.test_case "fault point spends the stall" `Quick
      test_fault_point_stalls;
    Alcotest.test_case "fault point free without a plan" `Quick
      test_fault_point_free_without_plan;
    Alcotest.test_case "hot-spot slows the access path" `Quick
      test_hotspot_slows_accesses;
    Alcotest.test_case "await_timeout expiry and delivery" `Quick
      test_await_timeout;
    Alcotest.test_case "RPC loss recovered by resend" `Quick
      test_rpc_loss_recovered_by_resend;
    Alcotest.test_case "RPC delays injected on both legs" `Quick
      test_rpc_delay_injected;
    Alcotest.test_case "bounded retry gives up" `Quick
      test_bounded_retry_gives_up;
    Alcotest.test_case "unbounded retry still resolves" `Quick
      test_unbounded_retry_still_resolves;
    Alcotest.test_case "disabled plan is exactly free" `Quick
      test_disabled_plan_identity;
    Alcotest.test_case "storm: timeouts retain more under stalls" `Slow
      test_storm_timeouts_retain_more;
  ]
