(* RW lock family tests: every construction (distributed / centralised
   indicators x both sweep policies x writer constituents across the
   family, NUMA composites included) must keep reader/writer exclusion
   while actually letting readers run in parallel; the timed and
   crash-recovery faces inherit the PR 6/7 obligations (conservation
   under random aborts, corpse sweeps under fail-stop). The acceptance
   pins ride at the end: read throughput beats every writer-serialising
   algorithm at 99% reads, and the distributed indicator layout does
   zero remote read-path traffic where the centralised baseline pays on
   every off-home-cluster reader. *)

open Eventsim
open Hector
open Locks
open Workloads

(* Writer constituents under test: plain MCS variants plus the three NUMA
   composites (RW-cohort / RW-HMCS / RW-CNA come free from the
   combinator). All are abortable and recoverable, so every construction
   exercises the timed and recovery faces too. *)
let writers =
  [ Lock.Mcs_h2; Lock.Mcs_cas; Lock.c_mcs_mcs; Lock.hmcs; Lock.cna ]

(* (policy, centralised, writer): full policy cross over the distributed
   layout, plus centralised baselines for one plain and one composite
   writer. *)
let constructions =
  List.concat_map
    (fun w ->
      [
        (Rwlock.Writer_blocking, false, w);
        (Rwlock.Reader_preference, false, w);
      ])
    writers
  @ [
      (Rwlock.Writer_blocking, true, Lock.Mcs_h2);
      (Rwlock.Reader_preference, true, Lock.c_mcs_mcs);
    ]

let construction_name (policy, centralised, writer) =
  Lock.algo_name (Lock.Rw { writer; policy; centralised })

let make_lock machine (policy, centralised, writer) =
  Lock.make_rw machine ~policy ~centralised writer

(* Writer-side crash-tolerant acquire, the [Lock.acquire_recoverable]
   slice/jitter discipline over the RW writer face (the composing layer
   gets this from [Lock.make]; tests drive the Rwlock directly). *)
let acquire_write_recoverable ?(check_period = 500) lock ctx =
  let rng = Ctx.rng ctx in
  let rec attempt pause =
    if Rwlock.try_acquire_for lock ctx ~deadline:(Ctx.now ctx + check_period)
    then ()
    else begin
      ignore (Rwlock.recover lock ctx);
      Ctx.interruptible_pause ctx (1 + (pause / 2) + Rng.int rng pause);
      attempt (min (2 * pause) (8 * check_period))
    end
  in
  attempt 64

(* -- safety under mixed read/write traffic ----------------------------------- *)

(* Host-side truth the lock cannot fake: section entry/exit bracketing on
   untimed host code is atomic with the preceding timed op, so a writer
   inside with any reader inside (or a second writer) is a real overlap. *)
let rw_stress ~construction ~p ~iters ~hold ~think ~seed =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let lock = make_lock machine construction in
  let readers_in = ref 0 and writer_in = ref 0 in
  let overlap = ref false in
  let r_peak = ref 0 in
  let reads = ref 0 and writes = ref 0 in
  let rng = Rng.create seed in
  for proc = 0 to p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        let r = Ctx.rng ctx in
        for _ = 1 to iters do
          if Rng.int r 4 > 0 then begin
            (* 3 in 4 operations read. *)
            Rwlock.acquire_read lock ctx;
            incr readers_in;
            r_peak := max !r_peak !readers_in;
            if !writer_in > 0 then overlap := true;
            if hold > 0 then Ctx.work ctx hold;
            decr readers_in;
            incr reads;
            Rwlock.release_read lock ctx
          end
          else begin
            Rwlock.acquire lock ctx;
            incr writer_in;
            if !writer_in > 1 || !readers_in > 0 then overlap := true;
            if hold > 0 then Ctx.work ctx hold;
            decr writer_in;
            incr writes;
            Rwlock.release lock ctx
          end;
          if think > 0 then Ctx.work ctx (1 + Rng.int r think)
        done)
  done;
  Engine.run eng;
  (not !overlap)
  && !reads + !writes = iters * p
  && Rwlock.read_acquisitions lock = !reads
  && Rwlock.acquisitions lock = !writes
  (* The lock's own window (admission CAS to release CAS) encloses the
     host bracket, so its peak dominates. *)
  && Rwlock.readers_peak lock >= !r_peak
  && Rwlock.is_free lock

let prop_rw_safety =
  QCheck.Test.make
    ~name:"every RW construction: exclusion, conservation, quiescence"
    ~count:25
    QCheck.(
      quad (int_range 2 8) (int_range 0 120) (int_range 1 60)
        (int_range 0 10000))
    (fun (p, hold, think, seed) ->
      List.for_all
        (fun c ->
          match rw_stress ~construction:c ~p ~iters:6 ~hold ~think ~seed with
          | ok -> ok
          | exception _ -> false)
        constructions)

(* -- reader parallelism ------------------------------------------------------ *)

(* The whole point of the family: concurrent readers > 1, visible from
   three independent gauges (host bracketing, the lock's own counter, the
   Obs per-class gauge) — and with zero lockdep complaints about the
   concurrent shared holders. *)
let test_reader_parallelism () =
  List.iter
    (fun ((_, _, _) as c) ->
      let name = construction_name c in
      let eng = Engine.create () in
      let machine = Machine.create eng Config.numachine in
      let verify = Verify.create ~mode:`Record ~n_procs:16 () in
      Machine.set_verify machine (Some verify);
      let obs = Obs.create ~n_procs:16 () in
      Machine.set_obs machine (Some obs);
      let lock = make_lock machine c in
      let inside = ref 0 and peak = ref 0 in
      let rng = Rng.create 7 in
      for proc = 0 to 7 do
        let ctx = Ctx.create machine ~proc (Rng.split rng) in
        Process.spawn eng (fun () ->
            for _ = 1 to 3 do
              Rwlock.acquire_read lock ctx;
              incr inside;
              peak := max !peak !inside;
              Ctx.work ctx 3_000;
              decr inside;
              Rwlock.release_read lock ctx
            done)
      done;
      Engine.run eng;
      Verify.finish verify ~now:(Machine.now machine);
      Alcotest.(check bool) (name ^ " host peak > 1") true (!peak > 1);
      (* The lock's inside-window encloses the host bracket (admission CAS
         to release CAS), so its peak dominates; the Obs gauge tracks the
         lock's window exactly. *)
      Alcotest.(check bool)
        (name ^ " lock gauge dominates")
        true
        (Rwlock.readers_peak lock >= !peak);
      Alcotest.(check int)
        (name ^ " obs gauge agrees with the lock")
        (Rwlock.readers_peak lock)
        (Obs.rw_read_peak obs ~cls:(Rwlock.vclass_read lock));
      Alcotest.(check int) (name ^ " no lockdep complaints") 0
        (Verify.violation_count verify);
      Alcotest.(check bool) (name ^ " free at end") true (Rwlock.is_free lock))
    constructions

(* Writer progress at a 99.9%-read-shaped load: one writer against seven
   looping readers must still complete every write under both policies
   (each gate, once closed, stays closed — so Reader_preference is not
   writer starvation). Engine completion is the liveness proof; the
   counter pins it. *)
let test_writer_progress_under_read_flood () =
  List.iter
    (fun policy ->
      let eng = Engine.create () in
      let machine = Machine.create eng Config.numachine in
      let lock =
        Lock.make_rw machine ~policy ~centralised:false Lock.Mcs_h2
      in
      let rng = Rng.create 11 in
      for proc = 1 to 7 do
        let ctx = Ctx.create machine ~proc (Rng.split rng) in
        Process.spawn eng (fun () ->
            for _ = 1 to 40 do
              Rwlock.acquire_read lock ctx;
              Ctx.work ctx 400;
              Rwlock.release_read lock ctx
            done)
      done;
      let ctx0 = Ctx.create machine ~proc:0 (Rng.split rng) in
      Process.spawn eng (fun () ->
          for _ = 1 to 5 do
            Rwlock.acquire lock ctx0;
            Ctx.work ctx0 200;
            Rwlock.release lock ctx0;
            Ctx.work ctx0 2_000
          done);
      Engine.run eng;
      Alcotest.(check int)
        (Rwlock.policy_name policy ^ " writer completed every write")
        5 (Rwlock.acquisitions lock);
      Alcotest.(check bool)
        (Rwlock.policy_name policy ^ " free at end")
        true (Rwlock.is_free lock))
    [ Rwlock.Writer_blocking; Rwlock.Reader_preference ]

(* -- timed faces (the PR 6 obligations) -------------------------------------- *)

let rw_abort_stress ~construction ~p ~iters ~hold ~timeout_cycles ~seed =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let lock = make_lock machine construction in
  let readers_in = ref 0 and writer_in = ref 0 in
  let overlap = ref false in
  let wins = ref 0 and aborts = ref 0 in
  let rng = Rng.create seed in
  for proc = 0 to p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        let r = Ctx.rng ctx in
        let read_section () =
          incr readers_in;
          if !writer_in > 0 then overlap := true;
          if hold > 0 then Ctx.work ctx hold;
          decr readers_in;
          incr wins;
          Rwlock.release_read lock ctx
        in
        let write_section () =
          incr writer_in;
          if !writer_in > 1 || !readers_in > 0 then overlap := true;
          if hold > 0 then Ctx.work ctx hold;
          decr writer_in;
          incr wins;
          Rwlock.release lock ctx
        in
        for _ = 1 to iters do
          let is_read = Rng.int r 2 = 0 in
          let timed = Rng.int r 4 > 0 in
          (if is_read then
             if timed then begin
               let deadline =
                 Machine.now machine + Rng.int r timeout_cycles
               in
               if Rwlock.try_acquire_read_for lock ctx ~deadline then
                 read_section ()
               else incr aborts
             end
             else begin
               Rwlock.acquire_read lock ctx;
               read_section ()
             end
           else if timed then begin
             let deadline = Machine.now machine + Rng.int r timeout_cycles in
             if Rwlock.try_acquire_for lock ctx ~deadline then
               write_section ()
             else incr aborts
           end
           else begin
             Rwlock.acquire lock ctx;
             write_section ()
           end);
          Ctx.work ctx (1 + Rng.int r 40)
        done;
        (* Eventual acquisition through the exclusive face: if an
           abandoned sweep stranded a gate closed, this never returns. *)
        Rwlock.acquire lock ctx;
        write_section ())
  done;
  Engine.run eng;
  (not !overlap)
  && !wins + !aborts = ((iters + 1) * p)
  && Rwlock.read_acquisitions lock + Rwlock.acquisitions lock = !wins
  && Rwlock.is_free lock

let prop_rw_abort_safety =
  QCheck.Test.make
    ~name:"RW timed faces: conservation under random aborts" ~count:25
    QCheck.(
      quad (int_range 2 8) (int_range 0 120)
        (int_range 1 4000)
        (int_range 0 10000))
    (fun (p, hold, timeout_cycles, seed) ->
      List.for_all
        (fun c ->
          match
            rw_abort_stress ~construction:c ~p ~iters:5 ~hold ~timeout_cycles
              ~seed
          with
          | ok -> ok
          | exception _ -> false)
        constructions)

(* A spent deadline fails fast on both faces without touching the lock,
   even while it is held against the attempt. *)
let test_rw_zero_deadline_fail_fast () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let lock =
    Lock.make_rw machine ~policy:Rwlock.Writer_blocking ~centralised:false
      Lock.Mcs_h2
  in
  let rng = Rng.create 3 in
  let ctx0 = Ctx.create machine ~proc:0 (Rng.split rng) in
  let ctx1 = Ctx.create machine ~proc:1 (Rng.split rng) in
  Process.spawn eng (fun () ->
      Rwlock.acquire lock ctx0;
      Ctx.work ctx0 800;
      Rwlock.release lock ctx0;
      Rwlock.acquire_read lock ctx0;
      Ctx.work ctx0 800;
      Rwlock.release_read lock ctx0);
  Process.spawn eng (fun () ->
      (* Against the held writer... *)
      Process.pause eng 100;
      let now = Machine.now machine in
      Alcotest.(check bool) "reader: spent deadline fails" false
        (Rwlock.try_acquire_read_for lock ctx1 ~deadline:now);
      Alcotest.(check bool) "writer: spent deadline fails" false
        (Rwlock.try_acquire_for lock ctx1 ~deadline:(now - 50));
      (* ... and against the held reader. *)
      Process.pause eng 900;
      let now = Machine.now machine in
      Alcotest.(check bool) "writer vs reader: spent deadline fails" false
        (Rwlock.try_acquire_for lock ctx1 ~deadline:now));
  Engine.run eng;
  Alcotest.(check bool) "free at end" true (Rwlock.is_free lock);
  Alcotest.(check bool) "expiries counted" true
    (Rwlock.timeouts lock + Rwlock.read_timeouts lock >= 3)

(* -- crash recovery (the PR 7 obligations) ----------------------------------- *)

(* A corpse inside a read section: its +2 must be swept out of its
   cluster's indicator by a recovering writer, with lockdep legalising
   exactly that sweep. *)
let test_dead_reader_swept () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let verify = Verify.create ~mode:`Record ~n_procs:16 () in
  Machine.set_verify machine (Some verify);
  let lock =
    Lock.make_rw machine ~policy:Rwlock.Writer_blocking ~centralised:false
      Lock.Mcs_h2
  in
  let rng = Rng.create 5 in
  let ctx1 = Ctx.create machine ~proc:1 (Rng.split rng) in
  let ctx0 = Ctx.create machine ~proc:0 (Rng.split rng) in
  Process.spawn eng (fun () ->
      Rwlock.acquire_read lock ctx1;
      Machine.kill_proc machine 1;
      Ctx.work ctx1 1 (* parks inside the section, +2 stuck *));
  let wrote = ref false in
  Process.spawn eng (fun () ->
      Ctx.work ctx0 2_000;
      Alcotest.(check int) "corpse counted inside" 1 (Rwlock.readers lock);
      acquire_write_recoverable lock ctx0;
      wrote := true;
      Ctx.work ctx0 100;
      Rwlock.release lock ctx0);
  Engine.run eng;
  Verify.finish verify ~now:(Machine.now machine);
  Alcotest.(check bool) "writer got through the corpse" true !wrote;
  Alcotest.(check int) "one indicator sweep" 1 (Rwlock.reader_sweeps lock);
  Alcotest.(check int) "indicator drained" 0 (Rwlock.readers lock);
  Alcotest.(check bool) "lockdep legalised the sweep" true
    (Verify.recoveries verify >= 1);
  Alcotest.(check int) "no violations" 0 (Verify.violation_count verify);
  Alcotest.(check bool) "free at end" true (Rwlock.is_free lock)

(* A corpse holding the write side: gates stay closed until a recovering
   reader runs the release on its behalf (packed constituent repaired
   through its own recovery). *)
let test_dead_writer_released () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let verify = Verify.create ~mode:`Record ~n_procs:16 () in
  Machine.set_verify machine (Some verify);
  let lock =
    Lock.make_rw machine ~policy:Rwlock.Reader_preference ~centralised:false
      Lock.Mcs_h2
  in
  let rng = Rng.create 6 in
  let ctx1 = Ctx.create machine ~proc:1 (Rng.split rng) in
  let ctx0 = Ctx.create machine ~proc:0 (Rng.split rng) in
  Process.spawn eng (fun () ->
      Rwlock.acquire lock ctx1;
      Machine.kill_proc machine 1;
      Ctx.work ctx1 1 (* parks holding the write side, gates closed *));
  let read = ref false in
  Process.spawn eng (fun () ->
      Ctx.work ctx0 2_000;
      Rwlock.acquire_read_recoverable ~check_period:500 lock ctx0;
      read := true;
      Ctx.work ctx0 100;
      Rwlock.release_read lock ctx0);
  Engine.run eng;
  Verify.finish verify ~now:(Machine.now machine);
  Alcotest.(check bool) "reader got through the corpse" true !read;
  Alcotest.(check bool) "lockdep legalised the forced release" true
    (Verify.recoveries verify >= 1);
  Alcotest.(check int) "no violations" 0 (Verify.violation_count verify);
  Alcotest.(check bool) "free at end" true (Rwlock.is_free lock)

(* Randomised fail-stop: one reader corpse and one writer corpse planted
   mid-traffic (the writer dies mid-sweep, blocked on the dead reader's
   indicator — the nastiest interleaving); every surviving processor runs
   crash-tolerant faces only and must finish its quota. *)
let rw_crash_stress ~construction ~p ~iters ~hold ~seed =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.numachine in
  let lock = make_lock machine construction in
  let reads = ref 0 and writes = ref 0 in
  let rng = Rng.create seed in
  let ctx_r = Ctx.create machine ~proc:(p - 1) (Rng.split rng) in
  let ctx_w = Ctx.create machine ~proc:(p - 2) (Rng.split rng) in
  (* Reader victim: in the section immediately, dead at 200. *)
  Process.spawn eng (fun () ->
      Rwlock.acquire_read lock ctx_r;
      Ctx.work ctx_r 200;
      Machine.kill_proc machine (p - 1);
      Ctx.work ctx_r 1);
  (* Writer victim: starts its sweep against the (soon-dead) reader and is
     killed while draining. *)
  Process.spawn eng (fun () ->
      Ctx.work ctx_w 100;
      Rwlock.acquire lock ctx_w;
      Ctx.work ctx_w 100;
      Rwlock.release lock ctx_w);
  Process.spawn eng (fun () ->
      Process.pause eng 1_500;
      Machine.kill_proc machine (p - 2));
  for proc = 0 to p - 3 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        let r = Ctx.rng ctx in
        Ctx.work ctx 3_000;
        for _ = 1 to iters do
          if Rng.int r 2 = 0 then begin
            Rwlock.acquire_read_recoverable ~check_period:500 lock ctx;
            if hold > 0 then Ctx.work ctx hold;
            incr reads;
            Rwlock.release_read lock ctx
          end
          else begin
            acquire_write_recoverable lock ctx;
            if hold > 0 then Ctx.work ctx hold;
            incr writes;
            Rwlock.release lock ctx
          end;
          Ctx.work ctx (1 + Rng.int r 60)
        done)
  done;
  Engine.run eng;
  !reads + !writes = iters * (p - 2)
  && Rwlock.reader_sweeps lock >= 1
  && Rwlock.readers lock = 0
  && Rwlock.read_acquisitions lock = !reads + 1 (* + the reader corpse *)
  && Rwlock.is_free lock

let prop_rw_crash_recovery =
  QCheck.Test.make
    ~name:"RW fail-stop: corpse sweeps and survivor conservation" ~count:25
    QCheck.(triple (int_range 5 8) (int_range 0 120) (int_range 0 10000))
    (fun (p, hold, seed) ->
      List.for_all
        (fun c ->
          match rw_crash_stress ~construction:c ~p ~iters:4 ~hold ~seed with
          | ok -> ok
          | exception _ -> false)
        [
          (Rwlock.Writer_blocking, false, Lock.Mcs_h2);
          (Rwlock.Reader_preference, false, Lock.c_mcs_mcs);
          (Rwlock.Writer_blocking, true, Lock.cna);
        ])

(* -- optimistic-abort observability (the seqlock satellite) ------------------ *)

(* An aborted optimistic read must show in the Obs profile under the
   seqlock's class — and reporting it must cost zero simulated time. *)
let test_seqlock_abort_visible_and_free () =
  let run ~with_obs =
    let eng = Engine.create () in
    let machine = Machine.create eng Config.hector in
    let obs =
      if with_obs then begin
        let o = Obs.create ~n_procs:16 () in
        Machine.set_obs machine (Some o);
        Some o
      end
      else None
    in
    let sq = Seqlock.create machine ~vclass:"sq" () in
    let rng = Rng.create 8 in
    let ctx0 = Ctx.create machine ~proc:0 (Rng.split rng) in
    let ctx1 = Ctx.create machine ~proc:1 (Rng.split rng) in
    Process.spawn eng (fun () ->
        Seqlock.write_begin sq ctx0;
        Ctx.work ctx0 2_000;
        Seqlock.write_end sq ctx0);
    let aborted = ref 0 in
    Process.spawn eng (fun () ->
        Ctx.work ctx1 300;
        (match Seqlock.read_begin sq ctx1 with
        | None -> incr aborted (* writer mid-section: abort 1 *)
        | Some _ -> ());
        Ctx.work ctx1 5_000;
        match Seqlock.read_begin sq ctx1 with
        | Some seq ->
          (* Validation failure is the second abort kind: force it by
             observing a sequence from before the write. *)
          if not (Seqlock.read_validate sq ctx1 (seq - 2)) then incr aborted
        | None -> ());
    Engine.run eng;
    (Machine.now machine, !aborted, Seqlock.read_aborts sq, obs)
  in
  let t_obs, aborted, counted, obs = run ~with_obs:true in
  let t_bare, _, _, _ = run ~with_obs:false in
  Alcotest.(check int) "both abort kinds hit" 2 aborted;
  Alcotest.(check int) "seqlock counted them" 2 counted;
  (match obs with
  | None -> Alcotest.fail "observer vanished"
  | Some obs ->
    let row =
      List.find_opt
        (fun r -> r.Obs.row_class = "sq")
        (Obs.profile_rows obs)
    in
    (match row with
    | None -> Alcotest.fail "no profile row for the seqlock class"
    | Some r ->
      Alcotest.(check int) "profile shows the aborts" 2 r.Obs.total.Obs.aborts));
  Alcotest.(check int) "observer costs zero simulated time" t_bare t_obs

(* -- acceptance pins (via the RW-SCALING workload) --------------------------- *)

(* At 99% reads and p = 8, the RW family's read throughput beats every
   writer-serialising [Lock.algo] driving the same traffic. *)
let test_read_throughput_beats_mutexes () =
  let base =
    {
      Rw_scaling.default_config with
      Rw_scaling.p = 8;
      n_clusters = 2;
      ops = 120;
      read_ratio = 0.99;
    }
  in
  let rw =
    Rw_scaling.run
      ~config:
        {
          base with
          Rw_scaling.style =
            Rw_scaling.Rw_lock
              {
                writer = Lock.c_mcs_mcs;
                policy = Rwlock.Writer_blocking;
                centralised = false;
              };
        }
      ()
  in
  Alcotest.(check int) "rw: no lockdep violations" 0
    rw.Rw_scaling.lockdep_violations;
  Alcotest.(check bool) "rw: readers parallelise" true
    (rw.Rw_scaling.peak_readers > 1);
  List.iter
    (fun algo ->
      let m =
        Rw_scaling.run
          ~config:{ base with Rw_scaling.style = Rw_scaling.Mutex algo }
          ()
      in
      Alcotest.(check int)
        (Lock.algo_name algo ^ ": serialised readers")
        1 m.Rw_scaling.peak_readers;
      Alcotest.(check bool)
        (Printf.sprintf "rw read throughput beats %s (%.1f vs %.1f ops/ms)"
           (Lock.algo_name algo) rw.Rw_scaling.read_throughput_ops_ms
           m.Rw_scaling.read_throughput_ops_ms)
        true
        (rw.Rw_scaling.read_throughput_ops_ms
        > m.Rw_scaling.read_throughput_ops_ms))
    [ Lock.Mcs_h2; Lock.c_mcs_mcs; Lock.hmcs; Lock.cna ]

(* The distributed layout's defining property: zero remote read-path
   indicator traffic, strictly below the centralised baseline at C >= 2. *)
let test_distributed_beats_centralised_on_remote_traffic () =
  let base =
    {
      Rw_scaling.default_config with
      Rw_scaling.p = 8;
      n_clusters = 2;
      ops = 60;
    }
  in
  let style centralised =
    Rw_scaling.Rw_lock
      { writer = Lock.Mcs_h2; policy = Rwlock.Writer_blocking; centralised }
  in
  let dist =
    Rw_scaling.run ~config:{ base with Rw_scaling.style = style false } ()
  in
  let cent =
    Rw_scaling.run ~config:{ base with Rw_scaling.style = style true } ()
  in
  Alcotest.(check int) "distributed: zero remote read-path ops" 0
    dist.Rw_scaling.read_remote;
  Alcotest.(check bool) "centralised pays per remote reader" true
    (cent.Rw_scaling.read_remote > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_rw_safety;
    Alcotest.test_case "reader parallelism on three gauges" `Quick
      test_reader_parallelism;
    Alcotest.test_case "writer progress under a read flood" `Quick
      test_writer_progress_under_read_flood;
    QCheck_alcotest.to_alcotest prop_rw_abort_safety;
    Alcotest.test_case "zero/negative deadline fails fast (both faces)" `Quick
      test_rw_zero_deadline_fail_fast;
    Alcotest.test_case "dead reader swept out of the indicator" `Quick
      test_dead_reader_swept;
    Alcotest.test_case "dead writer released on its behalf" `Quick
      test_dead_writer_released;
    QCheck_alcotest.to_alcotest prop_rw_crash_recovery;
    Alcotest.test_case "optimistic aborts visible to Obs, at zero cost" `Quick
      test_seqlock_abort_visible_and_free;
    Alcotest.test_case "read throughput beats every mutex at 99% reads" `Quick
      test_read_throughput_beats_mutexes;
    Alcotest.test_case "distributed indicators: zero remote read traffic"
      `Quick test_distributed_beats_centralised_on_remote_traffic;
  ]
