(* Tests for the morphing lock (ADAPTIVE): a directed
   promote -> demote -> promote trace with a fixed seed, the diurnal
   acceptance pins (no static shape wins both phases; Adaptive tracks
   each phase winner within the pinned margin with at least one
   promotion and one demotion), and a directed crash-near-morph case —
   holders fail-stop right after the first promotion, while the freshly
   morphed shape is still draining the old one. The random-interleaving
   coverage (aborts, kills at arbitrary points) lives in the family-wide
   qcheck harnesses in [test_abort.ml] and [test_crash.ml], which
   include [Lock.adaptive]. *)

open Eventsim
open Hector
open Locks

(* One NUMAchine rig with the checker and observer installed, clustered
   exactly as the hardware is (4 stations of 4). *)
let make_rig ~vclass () =
  let eng = Engine.create () in
  let cfg = Config.numachine in
  let machine = Machine.create eng cfg in
  let n_procs = Config.n_procs cfg in
  let cluster_of p = p mod n_procs / 4 in
  let verify = Verify.create ~n_procs () in
  Machine.set_verify machine (Some verify);
  let obs = Obs.create ~cluster_of ~n_clusters:4 ~n_procs () in
  Machine.set_obs machine (Some obs);
  let topo = Lock_core.topo ~n_clusters:4 ~cluster_of in
  let lock = Lock.make machine ~vclass ~topo Lock.adaptive in
  (eng, machine, verify, obs, lock, Verify.lock_class vclass)

(* -- directed trace: promote, demote, promote --------------------------------

   Four equal eras: a single-processor trickle, a 12-processor hammer
   spanning three clusters, the trickle again, the hammer again. The
   shape gauge is sampled at the end of each era: the lock must still be
   test&set after the first cold era, promoted by the end of each hot
   era, and demoted all the way back down by the end of the second cold
   era — so the window statistics provably recover from a morph in both
   directions, twice. *)
let test_directed_trace () =
  let eng, machine, verify, obs, lock, cls = make_rig ~vclass:"adaptive-trace" () in
  let cfg = Machine.config machine in
  let era = Config.cycles_of_us cfg 400.0 in
  let hold = Config.cycles_of_us cfg 1.5 in
  let think_cold = Config.cycles_of_us cfg 5.0 in
  let think_hot = Config.cycles_of_us cfg 2.0 in
  let rng0 = Rng.create 7 in
  let think_for ctx rng think =
    if think > 0 then Ctx.work ctx ((think / 2) + Rng.int rng (max 1 think))
  in
  (* Processor 0 trickles through all four eras. *)
  let ctx0 = Ctx.create machine ~proc:0 (Rng.split rng0) in
  Process.spawn eng (fun () ->
      let rng = Ctx.rng ctx0 in
      while Machine.now machine < 4 * era do
        think_for ctx0 rng think_cold;
        lock.Lock.acquire ctx0;
        Ctx.work ctx0 hold;
        lock.Lock.release ctx0
      done);
  (* Processors 1-11 hammer through eras 2 and 4, abandoning at each
     era's edge so the cold eras start clean. *)
  for proc = 1 to 11 do
    let ctx = Ctx.create machine ~proc (Rng.split rng0) in
    Process.spawn eng (fun () ->
        let rng = Ctx.rng ctx in
        List.iter
          (fun (start_at, stop_at) ->
            let now = Machine.now machine in
            if now < start_at then Ctx.work ctx (start_at - now);
            while Machine.now machine < stop_at do
              think_for ctx rng think_hot;
              if
                Machine.now machine < stop_at
                && lock.Lock.try_acquire_for ctx ~deadline:stop_at
              then begin
                Ctx.work ctx hold;
                lock.Lock.release ctx
              end
            done)
          [ (era, 2 * era); (3 * era, 4 * era) ])
  done;
  (* Sample the observer's shape gauge at each era edge. *)
  let shape_at = Array.make 4 (-1) in
  for i = 0 to 3 do
    Engine.schedule eng
      ~at:(((i + 1) * era) - 1)
      (fun () -> shape_at.(i) <- Obs.current_shape obs ~cls)
  done;
  Engine.run eng;
  Verify.finish verify ~now:(Machine.now machine);
  Alcotest.(check int) "cold era 1 never leaves test&set" 0 shape_at.(0);
  Alcotest.(check bool) "promoted by the end of hot era 1" true
    (shape_at.(1) > 0);
  Alcotest.(check int) "demoted back to test&set by the end of cold era 2" 0
    shape_at.(2);
  Alcotest.(check bool) "promoted again by the end of hot era 2" true
    (shape_at.(3) > 0);
  Alcotest.(check bool) "at least two promotions" true
    (Obs.morphs_up obs ~cls >= 2);
  Alcotest.(check bool) "at least one demotion" true
    (Obs.morphs_down obs ~cls >= 1);
  (* Per-cluster attribution is conserved. *)
  let rows = Obs.morph_rows obs ~cls in
  Alcotest.(check int) "per-cluster promotions sum to the total"
    (Obs.morphs_up obs ~cls)
    (List.fold_left (fun a r -> a + r.Obs.m_up) 0 rows);
  Alcotest.(check int) "per-cluster demotions sum to the total"
    (Obs.morphs_down obs ~cls)
    (List.fold_left (fun a r -> a + r.Obs.m_down) 0 rows);
  Alcotest.(check bool) "free after the drain" true (lock.Lock.is_free ());
  Alcotest.(check int) "no lockdep violations" 0
    (Verify.violation_count verify)

(* -- directed crash near a morph ---------------------------------------------

   Eight processors hammer a recoverable Adaptive lock from time zero, so
   the first promotion fires within a few acquisitions. Two victims watch
   the observer's morph counters from inside their critical sections and
   fail-stop the moment the first morph has happened — corpses die
   holding the freshly promoted shape while it is still draining the old
   one, the exact window the recover path's validated-corpse /
   sweep-all-shapes split exists for. Survivors must keep acquiring
   through recovery and leave the lock free. *)
let test_crash_near_morph () =
  let eng, machine, verify, obs, lock, cls = make_rig ~vclass:"adaptive-crash" () in
  assert lock.Lock.recoverable;
  let n_kills = 2 in
  let kills = ref 0 and wins = ref 0 in
  let occupant = ref (-1) and excl = ref true in
  let rng0 = Rng.create 13 in
  for proc = 0 to 7 do
    let ctx = Ctx.create machine ~proc (Rng.split rng0) in
    let victim = proc = 1 || proc = 2 in
    Process.spawn eng (fun () ->
        let r = Ctx.rng ctx in
        for _ = 1 to 40 do
          Lock.acquire_recoverable ~check_period:500 lock ctx;
          if !occupant >= 0 && Machine.proc_alive machine !occupant then
            excl := false;
          occupant := proc;
          Ctx.work ctx (1 + Rng.int r 24);
          if
            victim && !kills < n_kills
            && Obs.morphs_up obs ~cls + Obs.morphs_down obs ~cls > 0
          then begin
            incr kills;
            Machine.kill_proc machine proc;
            (* Parks here: the release below never runs. *)
            Ctx.work ctx 1
          end;
          occupant := -1;
          incr wins;
          lock.Lock.release ctx;
          Ctx.work ctx (1 + Rng.int r 16)
        done;
        (* Eventual progress: survivors outlive the corpses and drain. *)
        while !kills < n_kills do
          Ctx.work ctx 500
        done;
        Lock.acquire_recoverable ~check_period:500 lock ctx;
        if !occupant >= 0 && Machine.proc_alive machine !occupant then
          excl := false;
        occupant := proc;
        Ctx.work ctx 5;
        occupant := -1;
        incr wins;
        lock.Lock.release ctx)
  done;
  Engine.run eng;
  Verify.finish verify ~now:(Machine.now machine);
  Alcotest.(check bool) "a morph happened before the kills" true
    (Obs.morphs_up obs ~cls >= 1);
  Alcotest.(check int) "both victims died" n_kills !kills;
  Alcotest.(check int) "machine counted the crashes" n_kills
    (Machine.crashes machine);
  Alcotest.(check bool) "mutual exclusion modulo recovery" true !excl;
  Alcotest.(check int) "acquisitions conserved" (!wins + !kills)
    !(lock.Lock.acquires);
  Alcotest.(check bool) "free after the surviving drain" true
    (lock.Lock.is_free ());
  Alcotest.(check int) "no lockdep violations" 0
    (Verify.violation_count verify)

(* -- the ADAPTIVE acceptance pins --------------------------------------------

   The full diurnal race at the default (paper) settings: the same
   numbers [bench adaptive] prints and Bench_json exports. *)
let test_diurnal_pins () =
  let pts = Hurricane.Experiments.adaptive () in
  let open Hurricane.Experiments in
  List.iter
    (fun p ->
      Alcotest.(check int) (p.dname ^ " violations") 0 p.dviolations;
      Alcotest.(check bool) (p.dname ^ " free") true p.dfinal_free;
      Alcotest.(check bool) (p.dname ^ " completed work in every phase") true
        (p.dcold1_ops > 0 && p.dhot_ops > 0 && p.dcold2_ops > 0))
    pts;
  let is_adaptive p =
    match p.dalgo with Lock.Adaptive _ -> true | _ -> false
  in
  let statics = List.filter (fun p -> not (is_adaptive p)) pts in
  let adaptive = List.find is_adaptive pts in
  List.iter
    (fun p ->
      Alcotest.(check int) (p.dname ^ " never morphs") 0
        (p.dmorphs_up + p.dmorphs_down))
    statics;
  let best f = List.fold_left (fun a p -> if f p > f a then p else a)
      (List.hd statics) statics in
  let best_cold = best (fun p -> p.dcold_throughput) in
  let best_hot = best (fun p -> p.dhot_throughput) in
  (* The point of the experiment: the regimes have different winners. *)
  Alcotest.(check bool)
    (Printf.sprintf "no static wins both phases (cold: %s, hot: %s)"
       best_cold.dname best_hot.dname)
    true
    (best_cold.dalgo <> best_hot.dalgo);
  (* Adaptive tracks each phase winner within the pinned margin... *)
  Alcotest.(check bool)
    (Printf.sprintf "adaptive cold %.1f within 0.75x of %s's %.1f"
       adaptive.dcold_throughput best_cold.dname best_cold.dcold_throughput)
    true
    (adaptive.dcold_throughput >= 0.75 *. best_cold.dcold_throughput);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive hot %.1f within 0.5x of %s's %.1f"
       adaptive.dhot_throughput best_hot.dname best_hot.dhot_throughput)
    true
    (adaptive.dhot_throughput >= 0.5 *. best_hot.dhot_throughput);
  (* ...by actually morphing, and cooling back down by the end. *)
  Alcotest.(check bool) "at least one promotion" true (adaptive.dmorphs_up >= 1);
  Alcotest.(check bool) "at least one demotion" true
    (adaptive.dmorphs_down >= 1);
  Alcotest.(check int) "back to test&set overnight" 0 adaptive.dfinal_shape

let suite =
  [
    Alcotest.test_case "directed trace: promote, demote, promote" `Quick
      test_directed_trace;
    Alcotest.test_case "crash near a morph: recovery mid-drain" `Quick
      test_crash_near_morph;
    Alcotest.test_case "ADAPTIVE: diurnal acceptance pins" `Slow
      test_diurnal_pins;
  ]
