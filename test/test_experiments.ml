(* Paper-claim regression tests.

   Each test re-runs an experiment (at reduced scale where that does not
   change the claim) and asserts the qualitative result the paper reports —
   who wins, roughly by how much, where crossovers fall. If a model change
   breaks one of the reproduced results, these tests catch it. *)

open Locks
open Workloads

let mean (r : Lock_stress.result) = r.Lock_stress.summary.Measure.mean_us

let stress ?(hold_us = 0.0) ?(window_us = 8000.0) ~p algo =
  Lock_stress.run
    ~config:{ Lock_stress.default_config with p; hold_us; window_us }
    algo

(* Section 4.1.1: MCS 5.40 -> H2 3.69 (32% improvement); spin 3.65. *)
let test_uncontended_claims () =
  let find algo =
    (List.find
       (fun (r : Uncontended.result) -> r.Uncontended.algo = algo)
       (Uncontended.run_all ()))
      .Uncontended.pair_us
  in
  let mcs = find Lock.Mcs_original in
  let h2 = find Lock.Mcs_h2 in
  let spin = find (Lock.Spin { max_backoff_us = 35.0 }) in
  Alcotest.(check bool) "H2 within 5% of spin (paper: 3.69 vs 3.65)" true
    (h2 /. spin < 1.05);
  let improvement = (mcs -. h2) /. mcs in
  Alcotest.(check bool)
    (Printf.sprintf "MCS->H2 improvement %.0f%% (paper: 32%%)"
       (100.0 *. improvement))
    true
    (improvement > 0.20 && improvement < 0.45)

(* Figure 5a at p=16, hold 0: H1 tracks MCS; H2 pays its repair cost; the
   35us spin lock collapses. *)
let test_fig5a_claims () =
  let p = 16 in
  let mcs = mean (stress ~p Lock.Mcs_original) in
  let h1 = mean (stress ~p Lock.Mcs_h1) in
  let h2 = mean (stress ~p Lock.Mcs_h2) in
  let spin35 = mean (stress ~p (Lock.Spin { max_backoff_us = 35.0 })) in
  Alcotest.(check bool)
    (Printf.sprintf "H1 (%.0f) within 15%% of MCS (%.0f)" h1 mcs)
    true
    (h1 /. mcs < 1.15 && mcs /. h1 < 1.15);
  Alcotest.(check bool)
    (Printf.sprintf "H2 (%.0f) pays a visible repair cost over H1 (%.0f)" h2 h1)
    true (h2 > h1 *. 1.5);
  Alcotest.(check bool)
    (Printf.sprintf "spin35 (%.0f) degrades well past MCS (%.0f)" spin35 mcs)
    true
    (spin35 > mcs *. 2.0)

(* Figure 5b (hold 25us): H2's extra cost is "much less significant", and
   the 2ms spin lock is competitive in the mean. *)
let test_fig5b_claims () =
  let p = 16 and hold_us = 25.0 in
  let h1 = mean (stress ~p ~hold_us Lock.Mcs_h1) in
  let h2 = mean (stress ~p ~hold_us Lock.Mcs_h2) in
  let spin2ms = mean (stress ~p ~hold_us (Lock.Spin { max_backoff_us = 2000.0 })) in
  Alcotest.(check bool)
    (Printf.sprintf "H2/H1 at hold 25us is %.2f (much smaller than at 0)" (h2 /. h1))
    true
    (h2 /. h1 < 1.45);
  Alcotest.(check bool)
    (Printf.sprintf "spin 2ms (%.0f) competitive with H1 (%.0f)" spin2ms h1)
    true
    (spin2ms < h1 *. 1.5)

(* Section 4.1.2: the 2ms backoff lock starves under saturation. *)
let test_starvation_tail () =
  let r =
    stress ~p:16 ~hold_us:25.0 ~window_us:20_000.0
      (Lock.Spin { max_backoff_us = 2000.0 })
  in
  Alcotest.(check bool) "a real >2ms tail exists" true
    (r.Lock_stress.summary.Measure.frac_above_2ms > 0.005);
  Alcotest.(check bool) "max wait is huge" true
    (r.Lock_stress.summary.Measure.max_us > 2000.0)

(* Figure 7a: flat to p=4; spin at p=16 well above the distributed locks. *)
let test_fig7a_claims () =
  let run p lock_algo =
    (Independent_faults.run
       ~config:{ Independent_faults.default_config with p; iters = 60; lock_algo }
       ())
      .Independent_faults.summary
      .Measure.mean_us
  in
  let h1_1 = run 1 Lock.Mcs_h1 in
  let h1_4 = run 4 Lock.Mcs_h1 in
  let h1_16 = run 16 Lock.Mcs_h1 in
  let spin_4 = run 4 (Lock.Spin { max_backoff_us = 35.0 }) in
  let spin_16 = run 16 (Lock.Spin { max_backoff_us = 35.0 }) in
  Alcotest.(check bool)
    (Printf.sprintf "flat to p=4 (%.0f -> %.0f)" h1_1 h1_4)
    true
    (h1_4 < h1_1 *. 1.15);
  Alcotest.(check bool)
    (Printf.sprintf "little difference at p=4 (spin %.0f vs h1 %.0f)" spin_4 h1_4)
    true
    (spin_4 < h1_4 *. 1.15);
  Alcotest.(check bool)
    (Printf.sprintf "spin at p=16 (%.0f) well above distributed (%.0f)" spin_16
       h1_16)
    true
    (spin_16 > h1_16 *. 1.5)

(* Figure 7c: small clusters flat; the 16-cluster is the worst. *)
let test_fig7c_claims () =
  let run cluster_size =
    (Independent_faults.run
       ~config:
         {
           Independent_faults.default_config with
           p = 16;
           iters = 60;
           cluster_size;
           lock_algo = Lock.Mcs_h2;
         }
       ())
      .Independent_faults.summary
      .Measure.mean_us
  in
  let c1 = run 1 and c4 = run 4 and c16 = run 16 in
  Alcotest.(check bool)
    (Printf.sprintf "cluster 4 (%.0f) within 25%% of cluster 1 (%.0f)" c4 c1)
    true
    (c4 < c1 *. 1.25);
  Alcotest.(check bool)
    (Printf.sprintf "cluster 16 (%.0f) clearly worse than 4 (%.0f)" c16 c4)
    true
    (c16 > c4 *. 1.5)

(* Figure 7d: very small clusters dominated by inter-cluster operations;
   moderate sizes win. *)
let test_fig7d_claims () =
  let run cluster_size =
    (Shared_faults.run
       ~config:
         {
           Shared_faults.default_config with
           p = 16;
           rounds = 10;
           cluster_size;
           lock_algo = Lock.Mcs_h2;
         }
       ())
      .Shared_faults.summary
      .Measure.mean_us
  in
  let c1 = run 1 and c4 = run 4 and c16 = run 16 in
  Alcotest.(check bool)
    (Printf.sprintf "cluster 1 (%.0f) dominated by RPC traffic (vs %.0f)" c1 c4)
    true
    (c1 > c4 *. 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "moderate (%.0f) at least as good as 16 (%.0f)" c4 c16)
    true
    (c4 < c16 *. 1.2)

(* Section 2.5 / RETRY: the pessimistic strategy revalidates on every
   remote step; the optimistic one only pays on conflict. *)
let test_retry_strategies () =
  let run strategy =
    Destruction.run
      ~config:
        { Destruction.default_config with n_programs = 6; strategy }
      ()
  in
  let opt = run Hkernel.Procs.Optimistic in
  let pes = run Hkernel.Procs.Pessimistic in
  Alcotest.(check int) "optimistic never revalidates" 0
    opt.Destruction.revalidations;
  Alcotest.(check bool) "pessimistic revalidates per step" true
    (pes.Destruction.revalidations > 20);
  Alcotest.(check bool) "retries common under both (paper 2.5)" true
    (opt.Destruction.retries > 0 && pes.Destruction.retries > 0)

(* Section 5.2 / ABL3: CAS releases shrink the contended differential. *)
let test_cas_ablation () =
  let rows = Hurricane.Experiments.ablation_cas () in
  let contended r = r.Hurricane.Experiments.contended_p16_us in
  match rows with
  | [ swap_h2; cas_h2; cas_release ] ->
    Alcotest.(check bool) "CAS-release beats F&S repair under contention" true
      (contended cas_release < contended cas_h2
      && contended cas_release < contended swap_h2)
  | _ -> Alcotest.fail "unexpected row count"

(* Section 3.2 / TRY: distributed-lock TryLock starves; deferred work wins. *)
let test_trylock_claims () =
  let r =
    Trylock_starvation.run
      ~config:{ Trylock_starvation.default_config with window_us = 8000.0 }
      ()
  in
  Alcotest.(check bool) "trylock success under saturation is marginal" true
    (r.Trylock_starvation.try_success_rate < 0.15);
  Alcotest.(check int) "every deferred request completes"
    r.Trylock_starvation.deferred_posted
    r.Trylock_starvation.deferred_completed

(* Section 2.4 / ABL1: hybrid close to fine-grained for independent
   requests, coarse clearly worse, at a fraction of the lock words. *)
let test_granularity_ablation () =
  let rs = Hash_stress.run_all () in
  let find g =
    List.find (fun (r : Hash_stress.result) -> r.Hash_stress.granularity = g) rs
  in
  let hybrid = find Hkernel.Khash.Hybrid in
  let coarse = find Hkernel.Khash.Coarse in
  let fine = find Hkernel.Khash.Fine in
  let m (r : Hash_stress.result) = r.Hash_stress.summary.Measure.mean_us in
  Alcotest.(check bool)
    (Printf.sprintf "hybrid (%.0f) within 2x of fine (%.0f)" (m hybrid) (m fine))
    true
    (m hybrid < m fine *. 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "coarse (%.0f) worse than hybrid (%.0f)" (m coarse) (m hybrid))
    true
    (m coarse > m hybrid *. 1.3)

(* HASH-SCALING: sharding the table beats the single-lock hybrid once the
   machine is busy (p >= 8) for every shard count, and the seqlock
   optimistic read path undercuts locked lookups at a 90% read ratio. *)
let test_hash_scaling_claims () =
  let open Hurricane.Experiments in
  let rows =
    hash_scaling ~procs:[ 8; 16 ] ~read_ratios:[ 0.5; 0.9 ]
      ~shard_counts:[ 2; 4; 8 ] ()
  in
  let hybrid p rr =
    List.find
      (fun r ->
        r.hgran = Hkernel.Khash.Hybrid && r.hp = p && r.hread_ratio = rr)
      rows
  in
  List.iter
    (fun r ->
      if r.hgran = Hkernel.Khash.Sharded then begin
        let base = hybrid r.hp r.hread_ratio in
        Alcotest.(check bool)
          (Printf.sprintf
             "sharded (s=%d opt=%b p=%d rr=%.1f) %.1f ops/ms beats hybrid %.1f"
             r.hshards r.hoptimistic r.hp r.hread_ratio r.hthroughput
             base.hthroughput)
          true
          (r.hthroughput > base.hthroughput)
      end)
    rows;
  List.iter
    (fun r ->
      if
        r.hgran = Hkernel.Khash.Sharded && r.hoptimistic
        && r.hread_ratio = 0.9
      then begin
        let locked =
          List.find
            (fun l ->
              l.hgran = Hkernel.Khash.Sharded
              && (not l.hoptimistic)
              && l.hshards = r.hshards && l.hp = r.hp
              && l.hread_ratio = r.hread_ratio)
            rows
        in
        Alcotest.(check bool)
          (Printf.sprintf "optimistic reads (s=%d p=%d) %.1fus beat locked %.1fus"
             r.hshards r.hp r.hread_mean_us locked.hread_mean_us)
          true
          (r.hread_mean_us < locked.hread_mean_us);
        Alcotest.(check bool)
          (Printf.sprintf "optimistic path actually taken (s=%d p=%d)" r.hshards
             r.hp)
          true (r.hopt_hits > 0)
      end)
    rows

let suite =
  [
    Alcotest.test_case "UNC: uncontended latency claims" `Slow
      test_uncontended_claims;
    Alcotest.test_case "FIG5a: contention claims" `Slow test_fig5a_claims;
    Alcotest.test_case "FIG5b: hold-25us claims" `Slow test_fig5b_claims;
    Alcotest.test_case "STARVATION: 2ms-backoff tail" `Slow test_starvation_tail;
    Alcotest.test_case "FIG7a: independent-fault claims" `Slow test_fig7a_claims;
    Alcotest.test_case "FIG7c: cluster-size claims" `Slow test_fig7c_claims;
    Alcotest.test_case "FIG7d: shared-fault cluster claims" `Slow
      test_fig7d_claims;
    Alcotest.test_case "RETRY: strategy comparison" `Slow test_retry_strategies;
    Alcotest.test_case "ABL3: CAS release" `Slow test_cas_ablation;
    Alcotest.test_case "TRY: TryLock fairness" `Slow test_trylock_claims;
    Alcotest.test_case "ABL1: granularity" `Slow test_granularity_ablation;
    Alcotest.test_case "HASH-SCALING: sharding + seqlock claims" `Slow
      test_hash_scaling_claims;
  ]
