(* Unit and property tests for the event heap. *)

open Eventsim

let test_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check int) "length" 0 (Pqueue.length q);
  Alcotest.(check bool) "pop" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek" true (Pqueue.peek q = None)

let test_ordering () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:30 ~seq:0 "c";
  Pqueue.push q ~time:10 ~seq:1 "a";
  Pqueue.push q ~time:20 ~seq:2 "b";
  let pop () =
    match Pqueue.pop q with
    | Some e -> e.Pqueue.payload
    | None -> Alcotest.fail "unexpected empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "drained" true (Pqueue.is_empty q)

let test_fifo_ties () =
  let q = Pqueue.create () in
  for i = 0 to 9 do
    Pqueue.push q ~time:5 ~seq:i i
  done;
  let order = List.map (fun e -> e.Pqueue.payload) (Pqueue.drain q) in
  Alcotest.(check (list int)) "ties pop in seq order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    order

let test_peek_does_not_remove () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:1 ~seq:0 "x";
  ignore (Pqueue.peek q);
  Alcotest.(check int) "still there" 1 (Pqueue.length q);
  Alcotest.(check (option int)) "peek_time" (Some 1) (Pqueue.peek_time q)

let test_clear () =
  let q = Pqueue.create () in
  for i = 0 to 99 do
    Pqueue.push q ~time:i ~seq:i i
  done;
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let test_interleaved_push_pop () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:10 ~seq:0 10;
  Pqueue.push q ~time:5 ~seq:1 5;
  (match Pqueue.pop q with
  | Some e -> Alcotest.(check int) "min first" 5 e.Pqueue.payload
  | None -> Alcotest.fail "empty");
  Pqueue.push q ~time:1 ~seq:2 1;
  (match Pqueue.pop q with
  | Some e -> Alcotest.(check int) "new min" 1 e.Pqueue.payload
  | None -> Alcotest.fail "empty");
  match Pqueue.pop q with
  | Some e -> Alcotest.(check int) "last" 10 e.Pqueue.payload
  | None -> Alcotest.fail "empty"

let prop_drain_sorted =
  QCheck.Test.make ~name:"drain is sorted by (time, seq)" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Pqueue.create () in
      List.iteri (fun seq time -> Pqueue.push q ~time ~seq time) times;
      let out = Pqueue.drain q in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          (a.Pqueue.time < b.Pqueue.time
          || (a.Pqueue.time = b.Pqueue.time && a.Pqueue.seq < b.Pqueue.seq))
          && sorted rest
        | _ -> true
      in
      sorted out && List.length out = List.length times)

let prop_multiset_preserved =
  QCheck.Test.make ~name:"drain returns every pushed element" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Pqueue.create () in
      List.iteri (fun seq time -> Pqueue.push q ~time ~seq time) times;
      let out = List.map (fun e -> e.Pqueue.payload) (Pqueue.drain q) in
      List.sort compare out = List.sort compare times)

(* Random interleavings of push and pop against a reference model: every
   pop must return the exact (time, seq) minimum of what is currently in
   the heap, with seq as the FIFO tie-break. [Some t] pushes at time [t];
   [None] pops. This exercises sift-down paths that drain-only properties
   never reach (pops from partially filled heaps mid-stream). *)
let prop_interleaved_order =
  QCheck.Test.make ~name:"interleaved push/pop pops exact (time, seq) minimum"
    ~count:300
    QCheck.(list (option (int_bound 50)))
    (fun ops ->
      let q = Pqueue.create () in
      let model = ref [] (* (time, seq) pairs currently in the heap *) in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some time ->
            Pqueue.push q ~time ~seq:!seq (time, !seq);
            model := (time, !seq) :: !model;
            incr seq
          | None -> (
            match (Pqueue.pop q, !model) with
            | None, [] -> ()
            | None, _ :: _ | Some _, [] -> ok := false
            | Some e, entries ->
              let expected =
                List.fold_left min (List.hd entries) (List.tl entries)
              in
              if (e.Pqueue.time, e.Pqueue.seq) <> expected then ok := false;
              model := List.filter (fun x -> x <> expected) entries))
        ops;
      (* Whatever survives must still drain in exact order. *)
      let rest = List.map (fun e -> (e.Pqueue.time, e.Pqueue.seq)) (Pqueue.drain q) in
      !ok && rest = List.sort compare !model)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "pops in time order" `Quick test_ordering;
    Alcotest.test_case "FIFO tie-breaking" `Quick test_fifo_ties;
    Alcotest.test_case "peek keeps elements" `Quick test_peek_does_not_remove;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved_push_pop;
    QCheck_alcotest.to_alcotest prop_drain_sorted;
    QCheck_alcotest.to_alcotest prop_multiset_preserved;
    QCheck_alcotest.to_alcotest prop_interleaved_order;
  ]
