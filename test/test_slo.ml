(* The open-loop SLO stream at reduced scale: the structural invariants
   that must hold at any size — every arrival completes, percentiles are
   ordered, the lockdep checker stays clean, and tail latency grows as the
   offered rate approaches capacity. *)

open Workloads

let small ?(rate = 100.0) ?(seed = 31) () =
  {
    Slo_stream.default_config with
    Slo_stream.elements = 50_000;
    nbins = 1 lsl 13;
    requests = 1_000;
    rate_per_ms = rate;
    seed;
  }

let test_completes_all () =
  let config = small () in
  let r = Slo_stream.run ~config () in
  Alcotest.(check int) "every arrival completes" config.Slo_stream.requests
    r.Slo_stream.completed;
  Alcotest.(check int)
    "sample conservation" config.Slo_stream.requests
    (r.Slo_stream.read_summary.Measure.n + r.Slo_stream.update_summary.Measure.n);
  Alcotest.(check int) "lockdep clean" 0 r.Slo_stream.lockdep_violations;
  Alcotest.(check bool) "achieved rate positive" true
    (r.Slo_stream.achieved_per_ms > 0.0)

let test_percentiles_ordered () =
  let r = Slo_stream.run ~config:(small ()) () in
  let ordered (s : Measure.summary) =
    s.Measure.p50_us <= s.Measure.p99_us
    && s.Measure.p99_us <= s.Measure.p999_us
    && s.Measure.p999_us <= s.Measure.max_us
    && s.Measure.min_us <= s.Measure.p50_us
  in
  Alcotest.(check bool) "read percentiles ordered" true
    (ordered r.Slo_stream.read_summary);
  Alcotest.(check bool) "update percentiles ordered" true
    (ordered r.Slo_stream.update_summary)

let test_overload_inflates_tail () =
  (* Open-loop signature: pushing the offered rate well past capacity must
     inflate the p99.9 arrival-to-completion latency, because the backlog
     (queueing delay) is part of the measurement. *)
  let light = Slo_stream.run ~config:(small ~rate:50.0 ()) () in
  let heavy = Slo_stream.run ~config:(small ~rate:2000.0 ()) () in
  Alcotest.(check bool) "overload p99.9 > light-load p99.9" true
    (heavy.Slo_stream.read_summary.Measure.p999_us
    > light.Slo_stream.read_summary.Measure.p999_us);
  Alcotest.(check bool) "overload builds a backlog" true
    (heavy.Slo_stream.peak_backlog > light.Slo_stream.peak_backlog)

let test_deterministic () =
  let a = Slo_stream.run ~config:(small ()) () in
  let b = Slo_stream.run ~config:(small ()) () in
  Alcotest.(check (float 0.0)) "same achieved rate" a.Slo_stream.achieved_per_ms
    b.Slo_stream.achieved_per_ms;
  Alcotest.(check (float 0.0)) "same read p99.9"
    a.Slo_stream.read_summary.Measure.p999_us
    b.Slo_stream.read_summary.Measure.p999_us

let suite =
  [
    Alcotest.test_case "completes every arrival" `Quick test_completes_all;
    Alcotest.test_case "percentiles are ordered" `Quick test_percentiles_ordered;
    Alcotest.test_case "overload inflates the tail" `Slow
      test_overload_inflates_tail;
    Alcotest.test_case "deterministic for a fixed seed" `Quick
      test_deterministic;
  ]
