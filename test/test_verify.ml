(* Tests for the lockdep checker: direct ownership-hook units, the
   planted-violation probes (each class must be caught, a clean run must
   stay silent), checker-on/off result identity, and a qcheck property
   over the reserve status-word arithmetic. *)

open Eventsim
open Hector
open Locks
open Workloads

(* -- class interning ------------------------------------------------------- *)

let test_class_interning () =
  let a = Verify.lock_class "test.intern.a" in
  let a' = Verify.lock_class "test.intern.a" in
  let b = Verify.lock_class "test.intern.b" in
  Alcotest.(check int) "same name, same id" a a';
  Alcotest.(check bool) "distinct names, distinct ids" true (a <> b);
  Alcotest.(check string) "name round-trips" "test.intern.a" (Verify.class_name a)

(* -- ownership units (direct hook calls, no simulation) -------------------- *)

let test_ownership_units () =
  let v = Verify.create ~n_procs:4 () in
  let cls = Verify.lock_class "test.unit" in
  Verify.reserve_set v ~proc:0 ~cls ~word:1 ~label:"w" ~now:0;
  (* Setting an already-set bit: double reserve. *)
  Verify.reserve_set v ~proc:1 ~cls ~word:1 ~label:"w" ~now:5;
  Alcotest.(check int) "double reserve" 1
    (Verify.count_kind v Verify.Double_reserve);
  (* Clearing a bit someone else owns. *)
  Verify.reserve_clear v ~proc:2 ~word:1 ~now:6;
  Alcotest.(check int) "foreign clear" 1 (Verify.count_kind v Verify.Bad_clear);
  (* The word is free now: clearing again is a double clear. *)
  Verify.reserve_clear v ~proc:2 ~word:1 ~now:7;
  Alcotest.(check int) "double clear" 2 (Verify.count_kind v Verify.Bad_clear);
  (* Releasing a lock never acquired. *)
  Verify.released v ~proc:3 ~cls ~id:99 ~now:8;
  Alcotest.(check int) "bad release" 1 (Verify.count_kind v Verify.Bad_release)

let test_abort_mode_raises () =
  let v = Verify.create ~mode:`Abort ~n_procs:2 () in
  let cls = Verify.lock_class "test.abort" in
  match Verify.released v ~proc:0 ~cls ~id:7 ~now:0 with
  | () -> Alcotest.fail "expected Violation"
  | exception Verify.Violation viol ->
    Alcotest.(check string) "kind" "bad-release" (Verify.kind_name viol.vkind)

(* -- planted probes -------------------------------------------------------- *)

let check_probe ?(aborts = false) probe =
  let r = Verify_probes.run probe in
  let name = Verify_probes.probe_name r.Verify_probes.probe in
  Alcotest.(check bool) (name ^ ": planted class caught") true
    r.Verify_probes.ok;
  Alcotest.(check bool)
    (name ^ ": watchdog abort " ^ if aborts then "expected" else "not expected")
    aborts r.Verify_probes.aborted

let test_probe_abba () = check_probe Verify_probes.Abba
let test_probe_leak () = check_probe Verify_probes.Leak
let test_probe_interrupt () = check_probe Verify_probes.Interrupt_spin

let test_probe_stall () = check_probe ~aborts:true Verify_probes.Stalled_holder
let test_probe_deadlock () = check_probe ~aborts:true Verify_probes.Deadlock

let test_probe_aborted_waiter () =
  (* Self-resolving ABBA via timed acquisitions: the checker must stay
     silent — no phantom order or deadlock report from waits that can (and
     do) give up, and no watchdog abort. *)
  let r = Verify_probes.run Verify_probes.Aborted_waiter in
  Alcotest.(check int) "no phantom violations" 0 r.Verify_probes.violations;
  Alcotest.(check bool) "watchdog stayed quiet" false r.Verify_probes.aborted

let test_probe_clean () =
  let r = Verify_probes.run Verify_probes.Clean in
  Alcotest.(check int) "clean run records nothing" 0 r.Verify_probes.violations

(* -- checker on/off identity ----------------------------------------------- *)

(* The hooks are host-side only: a checked run must produce the same
   result record — ops, RPC traffic, timeout counts, recovery summary —
   as an unchecked one, even under (drop-free) injected faults. *)
let test_checker_identity () =
  let cycles us = Config.cycles_of_us Config.hector us in
  let fault =
    {
      Fault.disabled with
      seed = 42;
      stall_every = cycles 1000.0;
      stall_cycles = cycles 1000.0;
    }
  in
  let config =
    { Fault_storm.default_config with window_us = 8_000.0; fault = Some fault }
  in
  let plain = Fault_storm.run ~config Fault_storm.Timeout in
  let v = Verify.create ~n_procs:(Config.n_procs Config.hector) () in
  let checked = Fault_storm.run ~config ~verify:v Fault_storm.Timeout in
  Alcotest.(check bool) "identical results" true (plain = checked);
  Alcotest.(check int) "no violations on the correct protocol" 0
    (Verify.violation_count v)

(* -- reserve status-word arithmetic (property) ------------------------------ *)

(* Drive the real Reserve operations (no checker: the protocol guards are
   the model's job here) against a (writer, readers) model; after every
   operation the word's decoded state must match the model. *)
let prop_status_word =
  QCheck.Test.make ~name:"status word tracks writer/readers model" ~count:100
    QCheck.(list (int_range 0 3))
    (fun ops ->
      let eng = Engine.create () in
      let machine = Machine.create eng Config.hector in
      let ctx = Ctx.create machine ~proc:0 (Rng.create 9) in
      let word = Machine.alloc machine ~label:"prop" ~home:0 0 in
      let ok = ref true in
      Process.spawn eng (fun () ->
          let writer = ref false and readers = ref 0 in
          List.iter
            (fun op ->
              (match op with
              | 0 ->
                let got = Reserve.try_reserve ctx word in
                if got <> ((not !writer) && !readers = 0) then ok := false;
                if got then writer := true
              | 1 ->
                if !writer then begin
                  Reserve.clear ctx word;
                  writer := false
                end
              | 2 ->
                let got = Reserve.try_reserve_read ctx word in
                if got <> not !writer then ok := false;
                if got then incr readers
              | _ ->
                if !readers > 0 then begin
                  Reserve.clear_read ctx word;
                  decr readers
                end);
              if Reserve.readers word <> !readers then ok := false;
              if Reserve.write_reserved word <> !writer then ok := false)
            ops);
      Engine.run eng;
      !ok)

let suite =
  [
    Alcotest.test_case "class interning" `Quick test_class_interning;
    Alcotest.test_case "ownership units" `Quick test_ownership_units;
    Alcotest.test_case "abort mode raises" `Quick test_abort_mode_raises;
    Alcotest.test_case "probe: abba order" `Quick test_probe_abba;
    Alcotest.test_case "probe: reserve leak" `Quick test_probe_leak;
    Alcotest.test_case "probe: interrupt spin" `Quick test_probe_interrupt;
    Alcotest.test_case "probe: stalled holder" `Quick test_probe_stall;
    Alcotest.test_case "probe: deadlock" `Quick test_probe_deadlock;
    Alcotest.test_case "probe: aborted waiter is silent" `Quick
      test_probe_aborted_waiter;
    Alcotest.test_case "probe: clean" `Quick test_probe_clean;
    Alcotest.test_case "checker on/off identity" `Quick test_checker_identity;
    QCheck_alcotest.to_alcotest prop_status_word;
  ]
